"""Tests for the compile-and-cache layer (:mod:`repro.algebra.cache`).

The acceptance bar: two compilations of the same formula — in fresh
caches, with or without a disk round-trip — must serialize to identical
transition-table bytes; cache hits must not change verdicts; bumping the
cache version must invalidate on-disk entries.
"""

import pytest

from repro.algebra import (
    CACHE_VERSION,
    AutomatonCache,
    cache_key,
    cached_compile,
    default_cache,
    set_default_cache,
    transition_table_bytes,
)
from repro.api import Session
from repro.graph import generators as gen
from repro.mso import formulas


@pytest.fixture(scope="module")
def network():
    return gen.random_bounded_treedepth(12, 3, seed=5)


def _warmed_cache(directory, network, version=CACHE_VERSION):
    """A fresh cache whose triangle_free entry was warmed by one run."""
    cache = AutomatonCache(directory, version=version)
    session = Session(network, d=3, cache=cache)
    result = session.decide(formulas.triangle_free())
    return cache, result


# -- cache keys -------------------------------------------------------------

def test_cache_key_is_stable_and_label_order_insensitive():
    phi = formulas.triangle_free()
    key = cache_key(phi, (), d=3, labels=("a", "b"))
    assert key == cache_key(phi, (), d=3, labels=("b", "a"))
    assert key != cache_key(phi, (), d=4, labels=("a", "b"))
    assert key != cache_key(phi, (), d=3, labels=("a", "b"), singletons=True)
    assert key != cache_key(formulas.acyclic(), (), d=3, labels=("a", "b"))
    assert key != cache_key(phi, (), d=3, labels=("a", "b"),
                            version=CACHE_VERSION + 1)


# -- table bytes ------------------------------------------------------------

def test_double_compile_yields_identical_table_bytes(tmp_path, network):
    cache_a, result_a = _warmed_cache(tmp_path / "a", network)
    cache_b, result_b = _warmed_cache(tmp_path / "b", network)
    automaton_a = cache_a.automaton(formulas.triangle_free(), d=3)
    automaton_b = cache_b.automaton(formulas.triangle_free(), d=3)
    assert automaton_a is not automaton_b
    assert transition_table_bytes(automaton_a) \
        == transition_table_bytes(automaton_b)
    assert result_a.verdict == result_b.verdict
    assert result_a.rounds == result_b.rounds


def test_disk_roundtrip_preserves_warm_tables(tmp_path, network):
    cache_a, _ = _warmed_cache(tmp_path, network)
    warmed = transition_table_bytes(
        cache_a.automaton(formulas.triangle_free(), d=3)
    )

    cache_b = AutomatonCache(tmp_path)
    automaton = cache_b.automaton(formulas.triangle_free(), d=3)
    assert cache_b.disk_loads == 1
    assert cache_b.misses == 0
    assert transition_table_bytes(automaton) == warmed


# -- hits do not change verdicts --------------------------------------------

def test_cache_hits_keep_verdicts_identical_across_seeds(tmp_path, network):
    cache = AutomatonCache(tmp_path)
    phi = formulas.k_colorable(2)
    cold = Session(network, d=3, cache=cache, seed=0).decide(phi)
    assert cache.misses == 1
    verdicts = [cold.verdict]
    for seed in (1, 2, 3):
        warm = Session(network, d=3, cache=cache, seed=seed).decide(phi)
        verdicts.append(warm.verdict)
    assert cache.hits >= 3
    assert len(set(verdicts)) == 1
    # Same seed, warm cache: the whole execution replays identically.
    again = Session(network, d=3, cache=cache, seed=0).decide(phi)
    assert (again.verdict, again.rounds, again.messages) \
        == (cold.verdict, cold.rounds, cold.messages)


# -- invalidation -----------------------------------------------------------

def test_version_bump_misses_stale_disk_entries(tmp_path, network):
    _warmed_cache(tmp_path, network)
    assert list(tmp_path.glob("*.pkl"))

    bumped = AutomatonCache(tmp_path, version=CACHE_VERSION + 1)
    bumped.automaton(formulas.triangle_free(), d=3)
    assert bumped.disk_loads == 0
    assert bumped.misses == 1


def test_invalidate_drops_memory_and_disk(tmp_path, network):
    cache, _ = _warmed_cache(tmp_path, network)
    phi = formulas.triangle_free()
    assert cache.invalidate(phi, d=3)
    assert not list(tmp_path.glob("*.pkl"))
    cache.automaton(phi, d=3)
    assert cache.misses == 2  # the Session miss + the recompile
    assert not cache.invalidate(formulas.acyclic(), d=3)


def test_clear_empties_cache_directory(tmp_path, network):
    cache, _ = _warmed_cache(tmp_path, network)
    assert cache.clear() >= 1
    assert not list(tmp_path.glob("*.pkl"))


def test_save_warm_rewrites_only_grown_entries(tmp_path, network):
    cache = AutomatonCache(tmp_path)
    session = Session(network, d=3, cache=cache)
    session.decide(formulas.triangle_free())  # decide() already saves warm
    assert cache.save_warm() == 0  # nothing grew since
    # A different graph exercises new table entries on the same automaton.
    other = gen.random_bounded_treedepth(16, 3, seed=8)
    Session(other, d=3, cache=cache).decide(formulas.triangle_free())
    assert cache.save_warm() == 0  # facade saved again; still clean


def test_version_bump_still_answers_correctly(tmp_path, network):
    # Invalidation must cost only a recompile, never a different verdict.
    _, stale = _warmed_cache(tmp_path, network)
    bumped_cache, fresh = _warmed_cache(tmp_path, network,
                                        version=CACHE_VERSION + 1)
    assert fresh.verdict == stale.verdict
    assert bumped_cache.misses == 1
    # Both generations coexist on disk under distinct keys.
    assert len(list(tmp_path.glob("*.pkl"))) == 2


def test_repro_no_cache_disables_persistence(tmp_path, network, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    cache = AutomatonCache(tmp_path)
    assert cache.persist is False
    session = Session(network, d=3, cache=cache)
    result = session.decide(formulas.triangle_free())
    baseline = Session(network, d=3,
                       cache=AutomatonCache(persist=False))
    assert result.verdict == baseline.decide(formulas.triangle_free()).verdict
    assert not list(tmp_path.glob("*.pkl"))  # computed, never touched disk
    # In-memory memoization keeps working.
    session.decide(formulas.triangle_free())
    assert cache.hits >= 1


def test_repro_no_cache_skips_stale_disk_entries(tmp_path, network,
                                                 monkeypatch):
    _warmed_cache(tmp_path, network)  # persisted by a normal cache
    assert list(tmp_path.glob("*.pkl"))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    isolated = AutomatonCache(tmp_path)
    isolated.automaton(formulas.triangle_free(), d=3)
    assert isolated.disk_loads == 0  # never read, even though files exist
    assert isolated.misses == 1


def test_cached_compile_uses_default_cache(tmp_path):
    previous = default_cache()
    try:
        set_default_cache(AutomatonCache(tmp_path))
        first = cached_compile(formulas.triangle_free(), (), d=3)
        second = cached_compile(formulas.triangle_free(), (), d=3)
        assert first is second
        assert default_cache().hits == 1
    finally:
        set_default_cache(previous)


# -- stats ------------------------------------------------------------------

def test_stats_reports_entries_counters_and_state_counts(tmp_path, network):
    cache, _ = _warmed_cache(tmp_path, network)
    Session(network, d=3, cache=cache).decide(formulas.acyclic())
    stats = cache.stats()
    assert stats["directory"] == str(tmp_path)
    assert stats["persist"] is True
    assert stats["memory_entries"] == 2
    assert stats["disk_entries"] >= 1
    assert stats["disk_bytes"] > 0
    assert stats["misses"] == 2
    assert len(stats["entries"]) == 2
    assert all(e["table_entries"] > 0 for e in stats["entries"])
    minimized = [
        info for entry in stats["entries"] for info in entry["minimized"]
    ]
    # acyclic minimizes within budget at d=3; triangle_free falls back.
    assert any(
        not info["fallback"]
        and 0 < info["states_minimized"] < info["states_reachable"]
        for info in minimized
    )
    assert any(info["fallback"] for info in minimized)


def test_stats_counts_disk_footprint_only_when_persisting(network):
    cache = AutomatonCache(persist=False)
    Session(network, d=3, cache=cache).decide(formulas.acyclic())
    stats = cache.stats()
    assert stats["persist"] is False
    assert stats["disk_entries"] == 0
    assert stats["disk_bytes"] == 0
    assert stats["memory_entries"] == 1


def test_cache_stats_cli(tmp_path, network, monkeypatch, capsys):
    from repro.cli import main

    _warmed_cache(tmp_path / "cli", network)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli"))
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "automaton cache:" in out
    assert "on disk" in out
    assert "hits" in out
