"""Certification scheme: completeness, soundness (via corruption fuzzing),
and the size/rounds trade-off against the decision protocol."""

import random

import pytest

from repro.algebra import compile_formula
from repro.certification import prove, verify
from repro.errors import CertificationError
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import formulas
from repro.treedepth import optimal_elimination_forest


def test_completeness_acyclicity():
    automaton = compile_formula(formulas.acyclic(), ())
    for g in [gen.path(6), gen.star(5), gen.caterpillar(3, 2),
              gen.random_tree(12, seed=4)]:
        instance = prove(g, automaton)
        result = verify(g, automaton, instance)
        assert result.accepted, g
        assert result.rounds <= 2  # one communication round


def test_completeness_triangle_free():
    automaton = compile_formula(formulas.triangle_free(), ())
    g = gen.cycle(6)
    instance = prove(g, automaton)
    assert verify(g, automaton, instance).accepted


def test_completeness_labeled():
    g = gen.path(4)
    for v, lab in enumerate(["red", "blue", "red", "blue"]):
        g.add_vertex_label(v, lab)
    automaton = compile_formula(formulas.properly_2_labeled(), ())
    instance = prove(g, automaton)
    assert verify(g, automaton, instance).accepted


def test_prover_refuses_false_statements():
    automaton = compile_formula(formulas.acyclic(), ())
    with pytest.raises(CertificationError):
        prove(gen.cycle(4), automaton)


def test_prover_requires_closed_formula():
    from repro.mso import vertex_set

    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    with pytest.raises(CertificationError):
        prove(gen.path(3), automaton)


def test_soundness_corrupted_class():
    automaton = compile_formula(formulas.acyclic(), ())
    g = gen.path(6)
    instance = prove(g, automaton)
    # Flip the certified class of one node to every other known class:
    # some node must reject each time.
    target = 3
    parent, depth, bag, class_id = instance.certificates[target]
    for other in range(instance.codec.num_classes):
        if other == class_id:
            continue
        instance.certificates[target] = (parent, depth, bag, other)
        assert not verify(g, automaton, instance).accepted, other
    instance.certificates[target] = (parent, depth, bag, class_id)


def test_soundness_corrupted_structure():
    automaton = compile_formula(formulas.triangle_free(), ())
    g = gen.star(4)
    instance = prove(g, automaton)
    parent, depth, bag, class_id = instance.certificates[2]
    corruptions = [
        (parent, depth + 1, bag, class_id),          # wrong depth
        (parent, depth, bag[:-1] + (99,), class_id),  # bag not ending in v
        (parent, depth, (2,), class_id),              # bag pretends root
        (3, depth, bag, class_id),                    # parent not an ancestor
        (parent, depth, bag, 10 ** 6),                # class id out of range
    ]
    for bad in corruptions:
        instance.certificates[2] = bad
        assert not verify(g, automaton, instance).accepted, bad
    instance.certificates[2] = (parent, depth, bag, class_id)


def test_soundness_fuzzing_random_corruptions():
    automaton = compile_formula(formulas.acyclic(), ())
    g = gen.random_tree(10, seed=8)
    rng = random.Random(1)
    instance = prove(g, automaton)
    original = dict(instance.certificates)
    for trial in range(20):
        instance.certificates.update(original)
        victim = rng.choice(g.vertices())
        parent, depth, bag, class_id = instance.certificates[victim]
        mode = rng.randrange(3)
        if mode == 0:
            corrupted = (parent, depth, bag, (class_id + 1) % max(1, instance.codec.num_classes))
            if corrupted[3] == class_id:
                continue
        elif mode == 1:
            corrupted = (parent, max(1, depth - 1), bag, class_id)
        else:
            corrupted = (victim, depth, bag, class_id)
            if parent == victim:
                continue
        if corrupted == (parent, depth, bag, class_id):
            continue  # the mutation was a no-op (e.g. root depth clamp)
        instance.certificates[victim] = corrupted
        assert not verify(g, automaton, instance).accepted, (victim, corrupted)
    instance.certificates.update(original)


def test_certificate_size_is_logarithmic_per_depth():
    # For fixed treedepth the certificate is O(log n) bits: doubling n
    # must not double the certificate size.
    automaton = compile_formula(formulas.acyclic(), ())
    sizes = []
    for leaves in (8, 64, 512):
        g = gen.star(leaves)
        # The heuristic prover forest on a star is the optimal one (depth 2).
        instance = prove(g, automaton)
        sizes.append(instance.max_certificate_bits)
    assert sizes[2] < 2 * sizes[0]


def test_verification_single_round_vs_decision_rounds():
    # The trade-off of E8: verification is 1 round; the decision protocol
    # pays O(2^{2d}) rounds.
    from repro.distributed import decide_pipeline

    automaton = compile_formula(formulas.acyclic(), ())
    g = gen.caterpillar(4, 2)
    instance = prove(g, automaton)
    verification = verify(g, automaton, instance)
    assert verification.accepted
    from repro.treedepth import treedepth

    decision = decide_pipeline(compile_formula(formulas.acyclic(), ()), g, d=treedepth(g))
    assert decision.accepted
    assert verification.rounds < decision.total_rounds
