"""Tests for the command-line interface and graph I/O."""

import io

import pytest

from repro.cli import main, parse_graph_spec
from repro.errors import GraphError, ReproError
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph.io import dumps, loads, read_edge_list, to_dot


# ----------------------------------------------------------------------
# Graph I/O
# ----------------------------------------------------------------------

def test_io_roundtrip_plain():
    g = gen.cycle(5)
    assert loads(dumps(g)) == g


def test_io_roundtrip_labels_weights():
    g = gen.path(3)
    g.add_vertex_label(0, "red")
    g.add_vertex_label(0, "source")
    g.set_vertex_weight(1, 7)
    g.add_edge_label(0, 1, "backbone")
    g.set_edge_weight(1, 2, -3)
    assert loads(dumps(g)) == g


def test_io_comments_and_blanks():
    text = """
    # a comment
    vertex 1
    vertex 2

    edge 1 2
    """
    g = loads(text)
    assert g.vertices() == [1, 2]
    assert g.has_edge(1, 2)


def test_io_errors():
    with pytest.raises(GraphError):
        loads("vertex")
    with pytest.raises(GraphError):
        loads("edge 1")
    with pytest.raises(GraphError):
        loads("banana 1 2")


def test_edge_list():
    g = read_edge_list("0 1\n1 2\n7\n")
    assert g.has_edge(0, 1) and g.has_edge(1, 2)
    assert g.has_vertex(7) and g.degree(7) == 0
    with pytest.raises(GraphError):
        read_edge_list("1 2 3")


def test_to_dot():
    g = gen.path(2)
    g.add_vertex_label(0, "hub")
    g.set_edge_weight(0, 1, 3)
    dot = to_dot(g)
    assert dot.startswith("graph G {")
    assert '"0" -- "1"' in dot
    assert "weight=3" in dot
    assert "hub" in dot


# ----------------------------------------------------------------------
# Graph specs
# ----------------------------------------------------------------------

def test_parse_graph_specs():
    assert parse_graph_spec("path:5").num_vertices() == 5
    assert parse_graph_spec("cycle:4").num_edges() == 4
    assert parse_graph_spec("clique:4").num_edges() == 6
    assert parse_graph_spec("star:3").num_vertices() == 4
    assert parse_graph_spec("grid:2x3").num_vertices() == 6
    assert parse_graph_spec("caterpillar:3:1").num_vertices() == 6
    g = parse_graph_spec("bounded:10:3:0.5:7")
    assert g.num_vertices() == 10 and g.is_connected()


def test_parse_graph_spec_file(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text(dumps(gen.cycle(4)))
    g = parse_graph_spec(f"file:{path}")
    assert g == gen.cycle(4)


def test_parse_graph_spec_errors():
    with pytest.raises(ReproError):
        parse_graph_spec("nope:3")
    with pytest.raises(ReproError):
        parse_graph_spec("grid:abc")


# ----------------------------------------------------------------------
# CLI commands (in-process, capturing stdout)
# ----------------------------------------------------------------------

def test_cli_check_catalog(capsys):
    code = main(["check", "path:6", "--catalog", "acyclic"])
    out = capsys.readouterr().out
    assert code == 0
    assert "result: True" in out


def test_cli_check_rejects(capsys):
    code = main(["check", "cycle:4", "--catalog", "acyclic"])
    assert code == 1
    assert "result: False" in capsys.readouterr().out


def test_cli_check_congest(capsys):
    code = main(["check", "bounded:12:3:0.5:1", "--catalog", "triangle-free",
                 "--congest", "--d", "3"])
    out = capsys.readouterr().out
    assert code in (0, 1)
    assert "rounds:" in out


def test_cli_check_treedepth_exceeded(capsys):
    code = main(["check", "path:30", "--catalog", "acyclic",
                 "--congest", "--d", "1"])
    assert code == 2
    assert "treedepth exceeded" in capsys.readouterr().out


def test_cli_check_parsed_formula(capsys):
    code = main(["check", "star:4", "--formula",
                 "exists x:V . forall y:V . (x = y | adj(x, y))"])
    assert code == 0


def test_cli_optimize(capsys):
    code = main(["optimize", "cycle:6", "--problem", "independent-set"])
    out = capsys.readouterr().out
    assert code == 0
    assert "optimum: 3" in out


def test_cli_optimize_congest(capsys):
    code = main(["optimize", "cycle:5", "--problem", "vertex-cover",
                 "--congest", "--d", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "optimum: 3" in out


def test_cli_extended_catalog_entries(capsys):
    code = main(["check", "cycle:5", "--catalog", "has-even-subgraph"])
    assert code == 0
    code = main(["check", "path:5", "--catalog", "has-even-subgraph"])
    assert code == 1
    code = main(["optimize", "clique:4", "--problem", "clique"])
    out = capsys.readouterr().out
    assert code == 0
    assert "optimum: 4" in out


def test_cli_count_triangles(capsys):
    code = main(["count", "clique:4", "--triangles"])
    assert code == 0
    assert "triangles: 4" in capsys.readouterr().out


def test_cli_treedepth(capsys):
    code = main(["treedepth", "path:7", "--exact"])
    assert code == 0
    assert "treedepth: 3" in capsys.readouterr().out
    code = main(["treedepth", "grid:3x3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "heuristic depth" in out


def test_cli_treedepth_exact_size_guard(capsys):
    code = main(["treedepth", "path:40", "--exact"])
    assert code == 64


def test_cli_certify(capsys):
    code = main(["certify", "star:5", "--catalog", "acyclic"])
    out = capsys.readouterr().out
    assert code == 0
    assert "accepted=True" in out


def test_cli_catalog(capsys):
    code = main(["catalog"])
    out = capsys.readouterr().out
    assert code == 0
    assert "independent-set" in out and "acyclic" in out


def test_cli_unknown_catalog_name(capsys):
    code = main(["check", "path:3", "--catalog", "nonsense"])
    assert code == 64


def test_cli_requires_formula(capsys):
    code = main(["check", "path:3"])
    assert code == 64
