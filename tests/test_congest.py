"""Tests for the CONGEST simulator: model enforcement, primitives, metrics."""

import pytest

from repro.congest import (
    Simulation,
    broadcast_from_root,
    default_budget,
    flood_value,
    idle,
    leader_election,
    payload_bits,
    run_protocol,
)
from repro.errors import CongestError, MessageTooLargeError, ProtocolError
from repro.graph import Graph
from repro.graph import generators as gen


# ----------------------------------------------------------------------
# Payload accounting
# ----------------------------------------------------------------------

def test_payload_bits_monotone_in_content():
    assert payload_bits(0) < payload_bits(2 ** 40)
    assert payload_bits((1, 2)) < payload_bits((1, 2, 3))
    assert payload_bits(None) < payload_bits(("x", 1))
    assert payload_bits(frozenset({1, 2})) > payload_bits(frozenset())
    assert payload_bits(True) >= 3
    # Strings are protocol-constant tags: flat cost.
    assert payload_bits("ab") == payload_bits("a")


def test_payload_rejects_unserializable():
    with pytest.raises(CongestError):
        payload_bits([1, 2])  # lists are not in the payload algebra
    with pytest.raises(CongestError):
        payload_bits({"a": 1})


def test_default_budget_scales_logarithmically():
    assert default_budget(2) == 48
    assert default_budget(1 << 20) == 80
    assert default_budget(1) == 48


# ----------------------------------------------------------------------
# Simulator semantics
# ----------------------------------------------------------------------

def test_messages_delivered_next_round():
    def program(ctx):
        ctx.send_all(("hello", ctx.node))
        inbox = yield
        return sorted(inbox)

    result = run_protocol(gen.path(3), program)
    assert result.outputs == {0: [1], 1: [0, 2], 2: [1]}
    assert result.rounds == 2
    assert result.metrics.total_messages == 4


def test_send_to_non_neighbor_rejected():
    def program(ctx):
        ctx.send(99, "x")
        yield

    with pytest.raises(CongestError):
        run_protocol(gen.path(2), program)


def test_double_send_same_round_rejected():
    def program(ctx):
        ctx.send(ctx.neighbors[0], "a")
        ctx.send(ctx.neighbors[0], "b")
        yield

    with pytest.raises(CongestError):
        run_protocol(gen.path(2), program)


def test_oversized_message_rejected():
    def program(ctx):
        ctx.send_all(tuple(range(100)))  # ~100 ints: far over budget
        yield

    with pytest.raises(MessageTooLargeError):
        run_protocol(gen.path(2), program)


def test_nonterminating_protocol_detected():
    def program(ctx):
        while True:
            yield

    with pytest.raises(ProtocolError):
        run_protocol(gen.path(2), program, max_rounds=10)


def test_empty_network_rejected():
    with pytest.raises(CongestError):
        Simulation(Graph(), lambda ctx: iter(()))


def test_single_node_runs():
    def program(ctx):
        return ctx.n
        yield  # pragma: no cover

    result = run_protocol(Graph([7]), program)
    assert result.outputs == {7: 1}


def test_metrics_recorded():
    def program(ctx):
        ctx.send_all(("m", 1))
        inbox = yield
        return len(inbox)

    result = run_protocol(gen.cycle(4), program)
    metrics = result.metrics
    assert metrics.total_messages == 8
    assert metrics.max_message_bits <= metrics.budget_bits
    assert metrics.total_bits > 0
    assert "rounds=" in metrics.summary()


def test_unanimous_helper():
    def program(ctx):
        return "ok"
        yield  # pragma: no cover

    result = run_protocol(gen.path(2), program)
    assert result.unanimous() == "ok"

    def program2(ctx):
        return ctx.node
        yield  # pragma: no cover

    with pytest.raises(ProtocolError):
        run_protocol(gen.path(2), program2).unanimous()


def test_trace_records_messages():
    def program(ctx):
        ctx.send_all(("ping", ctx.node))
        inbox = yield
        return len(inbox)

    sim = Simulation(gen.path(3), program, trace=True)
    result = sim.run()
    assert result.outputs[1] == 2
    # 4 directed sends in round 1.
    assert len(sim.trace) == 4
    rounds = {entry[0] for entry in sim.trace}
    assert rounds == {1}
    senders = sorted(entry[1] for entry in sim.trace)
    assert senders == [0, 1, 1, 2]


def test_trace_respects_limit():
    def program(ctx):
        for _ in range(5):
            ctx.send_all(("x",))
            yield
        return None

    sim = Simulation(gen.path(2), program, trace=True, trace_limit=3)
    sim.run()
    assert len(sim.trace) == 3


def test_round_number_visible_to_nodes():
    def program(ctx):
        first = ctx.round_number
        yield
        second = ctx.round_number
        return (first, second)

    result = run_protocol(gen.path(2), program)
    assert result.outputs[0] == (1, 2)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------

def test_leader_election_elects_min_id():
    def program(ctx):
        leader = yield from leader_election(ctx, True, rounds=ctx.n)
        return leader

    g = gen.random_connected_graph(8, 4, seed=3)
    result = run_protocol(g, program)
    assert all(out == 0 for out in result.outputs.values())


def test_leader_election_respects_participation():
    # Nodes 0 and 3 do not participate; P4 splits into components {1,2}.
    def program(ctx):
        participating = ctx.node in (1, 2)
        leader = yield from leader_election(ctx, participating, rounds=ctx.n)
        return leader

    result = run_protocol(gen.path(4), program)
    assert result.outputs[0] is None and result.outputs[3] is None
    assert result.outputs[1] == 1 and result.outputs[2] == 1


def test_leader_election_components_do_not_leak():
    # P5 with only endpoints participating: each is its own leader even
    # though the middle vertices physically connect them.
    def program(ctx):
        participating = ctx.node in (0, 4)
        leader = yield from leader_election(ctx, participating, rounds=ctx.n)
        return leader

    result = run_protocol(gen.path(5), program)
    assert result.outputs[0] == 0
    assert result.outputs[4] == 4


def test_broadcast_from_root():
    def program(ctx):
        value = yield from broadcast_from_root(
            ctx, is_root=ctx.node == 2, value=("v", 42), rounds=ctx.n
        )
        return value

    result = run_protocol(gen.path(5), program)
    assert all(out == ("v", 42) for out in result.outputs.values())


def test_flood_value_collects_everything():
    def program(ctx):
        values = yield from flood_value(ctx, ("id", ctx.node), rounds=3 * ctx.n)
        return len(values)

    g = gen.cycle(5)
    result = run_protocol(g, program)
    assert all(out == 5 for out in result.outputs.values())


def test_idle_keeps_lockstep():
    def program(ctx):
        yield from idle(ctx, 5)
        return ctx.round_number

    result = run_protocol(gen.path(2), program)
    assert result.outputs[0] == result.outputs[1] == 6
