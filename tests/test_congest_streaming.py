"""Tests for the streaming primitives (send_items_to / ItemCollector) and
payload fragmentation accounting."""

import pytest

from repro.congest import (
    ItemCollector,
    fragment_payload,
    int_bits,
    run_protocol,
    send_items_to,
)
from repro.errors import ProtocolError
from repro.graph import generators as gen


def test_int_bits():
    assert int_bits(0) == 2
    assert int_bits(1) == 2
    assert int_bits(-1) == 2
    assert int_bits(255) == 9
    assert int_bits(-256) == 10


def test_fragment_payload_rounds():
    bits, rounds = fragment_payload(5, budget=48)
    assert rounds == 1
    big = tuple(range(50))
    bits, rounds = fragment_payload(big, budget=48)
    assert rounds == -(-bits // 48) > 1


def test_streaming_between_two_nodes():
    # Node 1 streams three items to node 0; node 0 collects them.
    def program(ctx):
        if ctx.node == 1:
            yield from send_items_to(ctx, 0, [(10,), (20,), (30,)], tag="data")
            return None
        collector = ItemCollector("data", [1])
        while not collector.complete:
            inbox = yield
            collector.absorb(inbox)
        return collector.items_from(1)

    result = run_protocol(gen.path(2), program)
    assert result.outputs[0] == [(10,), (20,), (30,)]
    # One item per round plus the end marker.
    assert result.rounds >= 4


def test_streaming_empty_list_sends_only_end_marker():
    def program(ctx):
        if ctx.node == 1:
            yield from send_items_to(ctx, 0, [], tag="data")
            return None
        collector = ItemCollector("data", [1])
        while not collector.complete:
            inbox = yield
            collector.absorb(inbox)
        return collector.items_from(1)

    result = run_protocol(gen.path(2), program)
    assert result.outputs[0] == []


def test_collector_rejects_item_after_end():
    collector = ItemCollector("t", [5])
    collector.absorb({5: ("t/end", None)})
    assert collector.complete
    with pytest.raises(ProtocolError):
        collector.absorb({5: ("t", 1)})


def test_collector_ignores_foreign_senders_and_tags():
    collector = ItemCollector("t", [5])
    collector.absorb({6: ("t", 1)})       # unknown sender
    collector.absorb({5: ("other", 1)})   # unknown tag
    collector.absorb({5: "not-a-tuple"})
    assert not collector.complete
    collector.absorb({5: ("t", 42)})
    collector.absorb({5: ("t/end", None)})
    assert collector.complete
    assert collector.items_from(5) == [42]


def test_concurrent_streams_interleave():
    # Both leaves of a star stream to the center simultaneously.
    def program(ctx):
        if ctx.node == 0:
            collector = ItemCollector("s", [1, 2])
            while not collector.complete:
                inbox = yield
                collector.absorb(inbox)
            return (collector.items_from(1), collector.items_from(2))
        items = [(ctx.node, i) for i in range(3)]
        yield from send_items_to(ctx, 0, items, tag="s")
        return None

    result = run_protocol(gen.star(2), program)
    left, right = result.outputs[0]
    assert left == [(1, 0), (1, 1), (1, 2)]
    assert right == [(2, 0), (2, 1), (2, 2)]
