"""Connected-subset predicates: induced connectivity, connected dominating
set (virtual backbone)."""

import pytest

from repro.algebra import compile_formula, optimize
from repro.distributed import optimize_pipeline
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import evaluate, formulas, vertex_set
from repro.treedepth import optimal_elimination_forest


def test_connected_subset_semantics():
    g = gen.path(5)
    s = vertex_set("S")
    f = formulas.connected_subset(s)
    assert evaluate(g, f, {s: frozenset({1, 2, 3})})
    assert not evaluate(g, f, {s: frozenset({0, 2})})
    assert evaluate(g, f, {s: frozenset()})
    assert evaluate(g, f, {s: frozenset({4})})


def test_connected_subset_engine_matches_semantics():
    s = vertex_set("S")
    f = formulas.connected_subset(s)
    automaton = compile_formula(f, (s,))
    from repro.algebra import check_assignment

    g = gen.cycle(5)
    forest = optimal_elimination_forest(g)
    for subset in [frozenset(), frozenset({0, 1}), frozenset({0, 2}),
                   frozenset({0, 1, 2, 3, 4}), frozenset({1, 2, 4})]:
        expected = evaluate(g, f, {s: subset})
        assert check_assignment(f, g, forest, {s: subset}, automaton) == expected


def test_min_connected_dominating_set():
    s = vertex_set("S")
    f = formulas.connected_dominating_set(s)
    for g in [gen.path(6), gen.star(4), gen.cycle(6),
              gen.random_bounded_treedepth(8, 3, seed=3)]:
        forest = optimal_elimination_forest(g)
        result = optimize(f, g, forest, s, maximize=False)
        oracle = props.min_connected_dominating_set(g)
        assert result is not None and oracle is not None
        assert result.value == oracle[0], g
        assert props.is_dominating_set(g, result.witness)
        assert g.induced_subgraph(result.witness).is_connected()


def test_distributed_connected_dominating_set():
    s = vertex_set("S")
    automaton = compile_formula(formulas.connected_dominating_set(s), (s,))
    g = gen.caterpillar(3, 2)
    outcome = optimize_pipeline(automaton, g, d=4, maximize=False)
    assert outcome.feasible
    oracle = props.min_connected_dominating_set(g)
    assert oracle is not None and outcome.value == oracle[0]
    assert props.is_dominating_set(g, outcome.witness)
    assert g.induced_subgraph(outcome.witness).is_connected()


def test_cds_oracle_none_only_for_empty():
    assert props.min_connected_dominating_set(Graph()) is None
    assert props.min_connected_dominating_set(Graph([0])) == (1, frozenset({0}))
