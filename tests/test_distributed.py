"""End-to-end tests of the distributed protocols (Algorithm 2, Theorem 6.1,
Section 6) against the sequential engine and the brute-force oracles."""

import pytest

from repro.algebra import compile_formula, compile_with_singletons
from repro.distributed import (
    build_elimination_tree,
    count_pipeline,
    decide_pipeline,
    gather_decide,
    optimize_pipeline,
    optmarked_distributed,
)
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import edge_set, evaluate, formulas, vertex_set
from repro.treedepth import treedepth


def small_networks():
    return [
        Graph([0]),
        gen.path(2),
        gen.path(7),
        gen.star(4),
        gen.cycle(4),
        gen.paw(),
        gen.random_bounded_treedepth(10, 3, seed=1),
        gen.random_bounded_treedepth(12, 3, seed=2, edge_prob=0.3),
        gen.caterpillar(3, 2),
    ]


# ----------------------------------------------------------------------
# Algorithm 2: elimination tree construction
# ----------------------------------------------------------------------

@pytest.mark.parametrize("index", range(9))
def test_elimination_tree_valid_and_bounded(index):
    g = small_networks()[index]
    td = treedepth(g)
    result = build_elimination_tree(g, d=td)
    assert result.accepted
    assert result.forest is not None
    result.forest.validate_for(g)
    # Lemma 2.5: the constructed tree is a subgraph of G of depth < 2^d.
    assert result.forest.is_subforest_of(g)
    assert result.forest.depth() <= 2 ** td
    # Each node's bag is its root path.
    for v, out in result.outputs.items():
        assert out.bag == tuple(result.forest.root_path(v))
        assert out.depth == result.forest.depth_of(v)
        assert tuple(sorted(result.forest.children(v))) == out.children


def test_elimination_tree_reports_exceeded():
    g = gen.path(8)  # treedepth 4 > 1
    result = build_elimination_tree(g, d=1)
    assert not result.accepted
    assert any(
        out.status == "treedepth_exceeded" for out in result.outputs.values()
    )


def test_elimination_tree_rounds_independent_of_n():
    # Same treedepth, growing n: round count must not grow (Theorem 6.1).
    rounds = []
    for n in (8, 16, 32, 64):
        g = gen.star(n - 1)
        result = build_elimination_tree(g, d=2)
        assert result.accepted
        rounds.append(result.rounds)
    assert len(set(rounds)) == 1


def test_elimination_requires_connected():
    from repro.errors import ProtocolError
    from repro.graph import disjoint_union

    with pytest.raises(ProtocolError):
        build_elimination_tree(disjoint_union(gen.path(2), gen.path(2)), d=2)


def test_elimination_messages_within_budget():
    g = gen.random_bounded_treedepth(20, 3, seed=5)
    result = build_elimination_tree(g, d=3)
    assert result.accepted
    from repro.congest import default_budget

    assert result.max_message_bits <= default_budget(20)


# ----------------------------------------------------------------------
# Theorem 6.1: decision
# ----------------------------------------------------------------------

DECISION_CASES = [
    ("triangle_free", formulas.triangle_free(),
     lambda g: not props.has_subgraph(g, gen.triangle())),
    ("acyclic", formulas.acyclic(), props.is_acyclic),
    ("2colorable", formulas.k_colorable(2), lambda g: props.is_k_colorable(g, 2)),
    ("non_3_colorable", formulas.not_k_colorable(3),
     lambda g: not props.is_k_colorable(g, 3)),
    ("c4_free", formulas.h_free(gen.cycle(4)),
     lambda g: not props.has_subgraph(g, gen.cycle(4))),
]


@pytest.mark.parametrize("name,formula,oracle", DECISION_CASES,
                         ids=[c[0] for c in DECISION_CASES])
def test_distributed_decision_matches_oracle(name, formula, oracle):
    automaton = compile_formula(formula, ())
    for g in small_networks():
        d = treedepth(g)
        outcome = decide_pipeline(automaton, g, d=d)
        assert not outcome.treedepth_exceeded
        assert outcome.accepted == oracle(g), g
        if g.num_vertices() > 1:
            # Some class id crossed a wire.
            assert outcome.num_classes > 0


def test_distributed_decision_treedepth_exceeded():
    automaton = compile_formula(formulas.acyclic(), ())
    outcome = decide_pipeline(automaton, gen.path(8), d=1)
    assert outcome.treedepth_exceeded
    assert not outcome.accepted


def test_distributed_decision_labeled():
    g = gen.path(3)
    for v, lab in [(0, "red"), (1, "blue"), (2, "red")]:
        g.add_vertex_label(v, lab)
    automaton = compile_formula(formulas.properly_2_labeled(), ())
    assert decide_pipeline(automaton, g, d=2).accepted
    g2 = gen.path(3)
    g2.add_vertex_label(0, "red")
    g2.add_vertex_label(1, "red")
    g2.add_vertex_label(2, "blue")
    assert not decide_pipeline(automaton, g2, d=2).accepted


def test_distributed_decision_rounds_independent_of_n():
    automaton = compile_formula(formulas.triangle_free(), ())
    rounds = []
    for n in (8, 16, 32):
        g = gen.star(n - 1)
        outcome = decide_pipeline(automaton, g, d=2)
        rounds.append(outcome.total_rounds)
    assert len(set(rounds)) == 1


# ----------------------------------------------------------------------
# Theorem 6.1: optimization
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "factory,maximize,oracle",
    [
        (formulas.independent_set, True, props.max_independent_set),
        (formulas.vertex_cover, False, props.min_vertex_cover),
        (formulas.dominating_set, False, props.min_dominating_set),
    ],
)
def test_distributed_optimization_matches_bruteforce(factory, maximize, oracle):
    s = vertex_set("S")
    formula = factory(s)
    automaton = compile_formula(formula, (s,))
    for g in [gen.path(6), gen.cycle(5), gen.star(4),
              gen.random_bounded_treedepth(9, 3, seed=7)]:
        outcome = optimize_pipeline(automaton, g, d=treedepth(g), maximize=maximize)
        assert outcome.feasible
        expected, _ = oracle(g)
        assert outcome.value == expected, g
        assert evaluate(g, formula, {s: outcome.witness})
        assert len(outcome.witness) == expected


def test_distributed_optimization_weighted():
    g = gen.path(4)
    for v, w in [(0, 2), (1, 10), (2, 2), (3, 2)]:
        g.set_vertex_weight(v, w)
    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    outcome = optimize_pipeline(automaton, g, d=3, maximize=True)
    assert outcome.feasible
    assert outcome.value == 12
    assert outcome.witness == frozenset({1, 3})


def test_distributed_optimization_edge_sets():
    m = edge_set("M")
    automaton = compile_formula(formulas.matching(m), (m,))
    for g in [gen.path(5), gen.star(4), gen.cycle(4)]:
        outcome = optimize_pipeline(automaton, g, d=treedepth(g), maximize=True)
        assert outcome.feasible
        assert outcome.value == props.max_matching_size(g)
        assert props.is_matching(g, outcome.witness)


def test_distributed_mst():
    g = gen.cycle(4)
    g.set_edge_weight(0, 1, 5)
    g.set_edge_weight(1, 2, 1)
    g.set_edge_weight(2, 3, 1)
    g.set_edge_weight(0, 3, 1)
    t = edge_set("T")
    automaton = compile_formula(formulas.spanning_tree(t), (t,))
    outcome = optimize_pipeline(automaton, g, d=3, maximize=False)
    assert outcome.feasible
    assert outcome.value == 3
    assert props.is_spanning_tree(g, outcome.witness)


def test_distributed_optimization_infeasible():
    from repro.mso import IncCounts, and_

    t = edge_set("T")
    impossible = and_(formulas.matching(t), IncCounts(t, frozenset({2})))
    automaton = compile_formula(impossible, (t,))
    outcome = optimize_pipeline(automaton, gen.path(2), d=2)
    assert not outcome.feasible
    assert outcome.witness == frozenset()


# ----------------------------------------------------------------------
# Section 6: counting and optmarked
# ----------------------------------------------------------------------

def test_distributed_triangle_counting():
    formula, variables = formulas.triangle_assignment()
    automaton = compile_with_singletons(formula, variables)
    for g in [gen.clique(4), gen.paw(), gen.cycle(5), gen.diamond()]:
        outcome = count_pipeline(automaton, g, d=treedepth(g))
        assert outcome.count == 6 * props.count_triangles(g), g


def test_distributed_counting_large_counts_fragmented():
    # #independent-sets grows exponentially; counts must still arrive.
    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    g = gen.star(12)
    outcome = count_pipeline(automaton, g, d=2)
    from repro.mso import count_satisfying_assignments

    assert outcome.count == 2 ** 12 + 1  # leaves free + center alone


def test_distributed_optmarked_accepts_optimum():
    g = gen.cycle(5)
    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    _, best = props.max_independent_set(g)
    outcome = optmarked_distributed(automaton, g, d=3, marked=best, maximize=True)
    assert outcome.accepted


def test_distributed_optmarked_rejects_suboptimal_and_invalid():
    g = gen.cycle(5)
    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    # Feasible but not maximum.
    sub = optmarked_distributed(automaton, g, d=3, marked=frozenset({0}), maximize=True)
    assert not sub.accepted
    # Not even feasible.
    bad = optmarked_distributed(
        automaton, g, d=3, marked=frozenset({0, 1}), maximize=True
    )
    assert not bad.accepted


def test_distributed_optmarked_mst():
    g = gen.cycle(4)
    g.set_edge_weight(0, 1, 5)
    t = edge_set("T")
    automaton = compile_formula(formulas.spanning_tree(t), (t,))
    good = frozenset({(0, 3), (1, 2), (2, 3)})
    outcome = optmarked_distributed(automaton, g, d=3, marked=good, maximize=False)
    assert outcome.accepted
    bad = frozenset({(0, 1), (1, 2), (2, 3)})  # weight 7, not minimum
    outcome2 = optmarked_distributed(automaton, g, d=3, marked=bad, maximize=False)
    assert not outcome2.accepted


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def test_gather_baseline_correct():
    for g in [gen.path(5), gen.cycle(6), gen.random_connected_graph(10, 5, seed=3)]:
        outcome = gather_decide(
            g, lambda h: not props.has_subgraph(h, gen.triangle())
        )
        assert outcome.accepted == (not props.has_subgraph(g, gen.triangle()))


def test_gather_baseline_rounds_grow_with_size():
    small = gather_decide(gen.path(8), props.is_acyclic)
    large = gather_decide(gen.path(40), props.is_acyclic)
    assert large.rounds > small.rounds
