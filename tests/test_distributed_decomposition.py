"""Distributed grid decomposition: O(1) rounds, verified coordinates."""

import pytest

from repro.distributed import decide_h_freeness, grid_decomposition_distributed
from repro.errors import ProtocolError
from repro.expansion import grid_residue_decomposition, verify_decomposition
from repro.graph import generators as gen
from repro.graph import properties as props


def test_distributed_grid_coloring_matches_central():
    rows, cols, p = 4, 5, 2
    g = gen.grid(rows, cols)
    outcome = grid_decomposition_distributed(g, rows, cols, p)
    assert outcome.accepted
    assert outcome.rounds <= 3  # O(1): one exchange
    central = grid_residue_decomposition(rows, cols, p)
    assert outcome.decomposition.part_of == central.part_of
    assert outcome.decomposition.num_parts == central.num_parts


def test_distributed_grid_coloring_is_valid_decomposition():
    rows = cols = 5
    g = gen.grid(rows, cols)
    outcome = grid_decomposition_distributed(g, rows, cols, p=2)
    verify_decomposition(g, outcome.decomposition, q=2)


def test_distributed_grid_coloring_detects_forged_coordinates():
    rows, cols, p = 3, 3, 2
    g = gen.grid(rows, cols)
    import repro.distributed.decomposition as module

    # Bypass the public wrapper to feed one node inconsistent coordinates.
    from repro.congest import run_protocol

    inputs = {
        r * cols + c: {"row": r, "col": c, "p": p}
        for r in range(rows)
        for c in range(cols)
    }
    inputs[4]["row"] = 2  # node 4 lies about its position
    result = run_protocol(g, module.grid_coloring_program, inputs=inputs,
                          max_rounds=10)
    assert any(color is None for color in result.outputs.values())


def test_distributed_grid_coloring_shape_mismatch():
    with pytest.raises(ProtocolError):
        grid_decomposition_distributed(gen.grid(3, 3), rows=4, cols=4, p=2)


def test_full_pipeline_with_distributed_decomposition():
    rows = cols = 4
    g = gen.grid(rows, cols)
    decomposition = grid_decomposition_distributed(g, rows, cols, p=3)
    outcome = decide_h_freeness(g, gen.triangle(), decomposition.decomposition)
    assert outcome.h_free == (not props.has_subgraph(g, gen.triangle()))
