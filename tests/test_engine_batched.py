"""Differential tests: the batched scheduler vs the naive baseline.

The batched engine must be *byte-identical* to the naive engine for
single-shard runs: same outputs, same round/message/bit metrics, same
crash sets — across every inbox order, with and without fault injection,
and through every distributed pipeline.
"""

import dataclasses

import pytest

from repro.algebra import compile_formula
from repro.congest import (
    ENGINES,
    INBOX_ORDERS,
    NodeContext,
    node_program,
    run_protocol,
)
from repro.distributed import count_pipeline, decide_pipeline, optimize_pipeline
from repro.faults import FaultPlan
from repro.graph import generators as gen
from repro.mso import formulas, vertex_set


@node_program
def gossip_min_program(ctx: NodeContext):
    """Three rounds of neighbor gossip; output the minimum id seen."""
    best = ctx.node
    for _ in range(3):
        ctx.send_all(("min", best))
        inbox = yield
        for payload in inbox.values():
            if isinstance(payload, tuple) and len(payload) == 2 \
                    and payload[0] == "min":
                best = min(best, payload[1])
    return best


@node_program
def chatter_program(ctx: NodeContext):
    """Tuple traffic of varying width; output total messages received."""
    total = 0
    for i in range(5):
        ctx.send_all(("tick", i, ctx.node))
        inbox = yield
        total += len(inbox)
    return total


def _snapshot(result):
    return (
        result.outputs,
        dataclasses.asdict(result.metrics),
        result.crashed,
    )


def test_engines_registered():
    assert set(ENGINES) == {"naive", "batched", "vectorized"}


@pytest.mark.parametrize("engine", [e for e in ENGINES if e != "naive"])
@pytest.mark.parametrize("inbox_order", INBOX_ORDERS)
def test_batched_identical_across_inbox_orders(inbox_order, engine):
    g = gen.random_bounded_treedepth(14, 3, seed=2)
    for program in (gossip_min_program, chatter_program):
        naive = run_protocol(
            g, program, inbox_order=inbox_order, seed=7, engine="naive"
        )
        batched = run_protocol(
            g, program, inbox_order=inbox_order, seed=7, engine=engine
        )
        assert _snapshot(naive) == _snapshot(batched)
        assert batched.engine == engine
        assert batched.replay_args()["engine"] == engine


@pytest.mark.parametrize("engine", [e for e in ENGINES if e != "naive"])
def test_batched_identical_under_faults(engine):
    g = gen.random_bounded_treedepth(14, 3, seed=2)
    plan = FaultPlan(
        seed=5, drop_rate=0.1, duplicate_rate=0.05, delay_rate=0.05,
        max_delay=2,
    )
    naive = run_protocol(g, gossip_min_program, seed=3, faults=plan,
                         engine="naive")
    batched = run_protocol(g, gossip_min_program, seed=3, faults=plan,
                           engine=engine)
    assert _snapshot(naive) == _snapshot(batched)


def test_pipelines_identical_across_engines():
    g = gen.random_bounded_treedepth(12, 3, seed=5)
    decide_automaton = compile_formula(formulas.triangle_free())
    s = vertex_set("S")
    opt_automaton = compile_formula(formulas.independent_set(s), (s,))
    formula, variables = formulas.triangle_assignment()
    count_automaton = compile_formula(formula, variables)

    runs = {}
    for engine in ENGINES:
        decided = decide_pipeline(decide_automaton, g, 3, seed=1,
                                  engine=engine)
        optimized = optimize_pipeline(opt_automaton, g, 3, seed=1,
                                      engine=engine)
        counted = count_pipeline(count_automaton, g, 3, seed=1, engine=engine)
        runs[engine] = (
            decided.accepted, decided.total_rounds, decided.total_messages,
            decided.max_message_bits,
            optimized.value, optimized.witness, optimized.total_rounds,
            counted.count, counted.total_rounds,
        )
    for engine in ENGINES:
        assert runs[engine] == runs["naive"], engine


def test_unknown_engine_rejected():
    g = gen.path(4)
    with pytest.raises(Exception):
        run_protocol(g, gossip_min_program, engine="warp")
