"""Smoke tests: every example script must run end-to-end and make sense.

The examples are user-facing documentation; breaking one silently would be
worse than a failing unit test.  They execute in-process (their ``main``
functions) with stdout captured.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "2-colorable?" in out
    assert "constant in n" in out


def test_service_placement(capsys):
    load_example("service_placement.py").main()
    out = capsys.readouterr().out
    assert "optimal hosting cost" in out
    assert "verified against brute force" in out


def test_motif_audit(capsys):
    load_example("motif_audit.py").main()
    out = capsys.readouterr().out
    assert "triangles:" in out
    assert "triangle-free? True" in out


def test_fault_replay(capsys):
    load_example("fault_replay.py").main()
    out = capsys.readouterr().out
    assert "replay is deterministic: True" in out
    assert "agrees with baseline: True" in out


def test_certified_topology(capsys):
    load_example("certified_topology.py").main()
    out = capsys.readouterr().out
    assert "audit: accepted=True" in out
    assert "tampered audit: accepted=False" in out
