"""Low treedepth decompositions and the Corollary 7.3 H-freeness pipeline."""

import math

import pytest

from repro.distributed import decide_h_freeness
from repro.errors import DecompositionError, ProtocolError
from repro.expansion import (
    degeneracy_ordering,
    depth_coloring_decomposition,
    grid_residue_decomposition,
    union_graph,
    verify_decomposition,
)
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props


# ----------------------------------------------------------------------
# Degeneracy
# ----------------------------------------------------------------------

def test_degeneracy_ordering_values():
    order, degen = degeneracy_ordering(gen.clique(4))
    assert degen == 3
    assert len(order) == 4
    _, d_path = degeneracy_ordering(gen.path(6))
    assert d_path == 1
    _, d_grid = degeneracy_ordering(gen.grid(4, 4))
    assert d_grid == 2


def test_degeneracy_ordering_property():
    # Every vertex has at most `degeneracy` neighbors later in the order.
    g = gen.random_connected_graph(15, 10, seed=6)
    order, degen = degeneracy_ordering(g)
    position = {v: i for i, v in enumerate(order)}
    for v in g.vertices():
        later = sum(1 for u in g.neighbors(v) if position[u] > position[v])
        assert later <= degen


# ----------------------------------------------------------------------
# Low treedepth decompositions
# ----------------------------------------------------------------------

def test_depth_coloring_decomposition_valid():
    for g in [gen.path(20), gen.caterpillar(5, 2),
              gen.random_bounded_treedepth(14, 3, seed=3)]:
        decomposition = depth_coloring_decomposition(g, p=2)
        verify_decomposition(g, decomposition, q=2)


def test_depth_coloring_covers_all_vertices():
    g = gen.path(10)
    decomposition = depth_coloring_decomposition(g, p=3)
    assert set(decomposition.part_of) == set(g.vertices())
    parts = decomposition.parts()
    assert sum(len(vs) for vs in parts.values()) == 10


def test_grid_residue_decomposition_valid():
    g = gen.grid(6, 6)
    decomposition = grid_residue_decomposition(6, 6, p=2)
    assert decomposition.num_parts == 9
    verify_decomposition(g, decomposition, q=2)


def test_grid_residue_windows_bound_components():
    rows = cols = 8
    p = 2
    g = gen.grid(rows, cols)
    decomposition = grid_residue_decomposition(rows, cols, p)
    for index_set in decomposition.union_subsets(p):
        sub = union_graph(g, decomposition, index_set)
        for comp in sub.connected_components():
            # Components fit in a (p+1) x (p+1) window.
            rs = [v // cols for v in comp]
            cs = [v % cols for v in comp]
            assert max(rs) - min(rs) <= p
            assert max(cs) - min(cs) <= p


def test_grid_residue_rejects_bad_params():
    with pytest.raises(DecompositionError):
        grid_residue_decomposition(0, 5, 2)


def test_union_subsets_enumeration():
    decomposition = grid_residue_decomposition(3, 3, p=1)
    subsets = list(decomposition.union_subsets(1))
    assert all(len(s) == 1 for s in subsets)
    subsets2 = list(decomposition.union_subsets(2))
    assert any(len(s) == 2 for s in subsets2)


def test_verify_decomposition_catches_violations():
    # A fake decomposition putting everything in one part of a cycle of
    # treedepth 3 must fail the q=1 bound of 1.
    g = gen.cycle(6)
    from repro.expansion import LowTreedepthDecomposition

    fake = LowTreedepthDecomposition(
        p=1, part_of={v: 0 for v in g.vertices()}, num_parts=1, bound_kind="linear"
    )
    with pytest.raises(DecompositionError):
        verify_decomposition(g, fake, q=1)


# ----------------------------------------------------------------------
# Corollary 7.3 pipeline
# ----------------------------------------------------------------------

def test_h_freeness_on_grids():
    g = gen.grid(5, 5)
    decomposition = grid_residue_decomposition(5, 5, p=3)
    triangle = gen.triangle()
    outcome = decide_h_freeness(g, triangle, decomposition)
    assert outcome.h_free  # grids are triangle-free
    c4 = gen.cycle(4)
    decomposition4 = grid_residue_decomposition(5, 5, p=4)
    outcome2 = decide_h_freeness(g, c4, decomposition4)
    assert not outcome2.h_free  # grids are full of 4-cycles
    assert outcome2.runs >= 1


def test_h_freeness_matches_oracle_on_caterpillars():
    g = gen.caterpillar(4, 2)
    decomposition = depth_coloring_decomposition(g, p=4)
    for pattern in [gen.path(3), gen.star(3), gen.triangle()]:
        outcome = decide_h_freeness(g, pattern, decomposition)
        assert outcome.h_free == (not props.has_subgraph(g, pattern)), pattern


def test_h_freeness_requires_connected_pattern():
    from repro.graph import disjoint_union

    g = gen.grid(3, 3)
    decomposition = grid_residue_decomposition(3, 3, p=4)
    disconnected = disjoint_union(gen.path(2), gen.path(2))
    with pytest.raises(ProtocolError):
        decide_h_freeness(g, disconnected, decomposition)


def test_h_freeness_requires_large_enough_p():
    g = gen.grid(3, 3)
    decomposition = grid_residue_decomposition(3, 3, p=1)
    with pytest.raises(ProtocolError):
        decide_h_freeness(g, gen.triangle(), decomposition)


def test_h_freeness_round_accounting():
    g = gen.grid(4, 4)
    decomposition = grid_residue_decomposition(4, 4, p=2)
    outcome = decide_h_freeness(g, gen.path(2), decomposition)
    assert outcome.decomposition_rounds == math.ceil(math.log2(16))
    assert outcome.total_rounds == outcome.decomposition_rounds + outcome.checking_rounds
    assert not outcome.h_free  # any edge is a P2
