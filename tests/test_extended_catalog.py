"""The remaining Section 1.1 problems: clique partitions, edge coloring,
Eulerian (even) subgraphs, cubic subgraphs, and the direct clique atom."""

import pytest

from repro.algebra import check, compile_formula, optimize
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import IncParity, IsClique, evaluate, formulas, vertex_set, edge_set
from repro.treedepth import dfs_elimination_forest, optimal_elimination_forest


def graph_zoo():
    return [
        Graph([0]),
        gen.path(4),
        gen.cycle(4),
        gen.cycle(5),
        gen.star(3),
        gen.clique(4),
        gen.paw(),
        gen.diamond(),
        gen.complete_bipartite(2, 3),
        gen.random_connected_graph(6, 3, seed=4),
    ]


# ----------------------------------------------------------------------
# Atom semantics
# ----------------------------------------------------------------------

def test_is_clique_semantics():
    g = gen.paw()  # triangle 0,1,2 plus pendant 3 on 0
    s = vertex_set("S")
    assert evaluate(g, IsClique(s), {s: frozenset({0, 1, 2})})
    assert not evaluate(g, IsClique(s), {s: frozenset({1, 2, 3})})
    assert evaluate(g, IsClique(s), {s: frozenset()})
    assert evaluate(g, IsClique(s), {s: frozenset({3})})


def test_inc_parity_semantics():
    g = gen.cycle(4)
    e = edge_set("E")
    assert evaluate(g, IncParity(e, even=True), {e: frozenset(g.edges())})
    assert not evaluate(
        g, IncParity(e, even=True), {e: frozenset({(0, 1)})}
    )
    within = vertex_set("W")
    assert evaluate(
        g,
        IncParity(e, even=False, within=within),
        {e: frozenset({(0, 1)}), within: frozenset({0, 1})},
    )


def test_inc_counts_with_cap_semantics():
    from repro.mso import IncCounts

    g = gen.clique(4)
    e = edge_set("E")
    # All six K4 edges: every vertex has degree exactly 3.
    env = {e: frozenset(g.edges())}
    assert evaluate(g, IncCounts(e, frozenset({3}), cap=4), env)
    assert not evaluate(g, IncCounts(e, frozenset({4}), cap=4), env)


# ----------------------------------------------------------------------
# Closed formulas vs oracles (engine + semantics)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("k", [1, 2, 3])
def test_partition_into_k_cliques(k):
    formula = formulas.partition_into_k_cliques(k)
    automaton = compile_formula(formula, ())
    for g in graph_zoo():
        expected = props.can_partition_into_k_cliques(g, k)
        for forest in (optimal_elimination_forest(g), dfs_elimination_forest(g)):
            assert check(formula, g, forest, automaton) == expected, (k, g)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_edge_k_colorable(k):
    formula = formulas.edge_k_colorable(k)
    automaton = compile_formula(formula, ())
    for g in graph_zoo():
        expected = props.chromatic_index_at_most(g, k)
        forest = optimal_elimination_forest(g)
        assert check(formula, g, forest, automaton) == expected, (k, g)


def test_has_even_subgraph_iff_cyclic():
    formula = formulas.has_even_subgraph()
    automaton = compile_formula(formula, ())
    for g in graph_zoo():
        expected = not props.is_acyclic(g)
        forest = optimal_elimination_forest(g)
        assert check(formula, g, forest, automaton) == expected, g


def test_has_cubic_subgraph():
    formula = formulas.has_cubic_subgraph()
    automaton = compile_formula(formula, ())
    for g in [gen.clique(4), gen.path(5), gen.cycle(5), gen.star(4),
              gen.complete_bipartite(3, 3)]:
        expected = props.has_cubic_subgraph(g)
        forest = optimal_elimination_forest(g)
        assert check(formula, g, forest, automaton) == expected, g
    assert check(
        formulas.has_cubic_subgraph(),
        gen.clique(4),
        optimal_elimination_forest(gen.clique(4)),
    )


# ----------------------------------------------------------------------
# Max clique via the direct atom
# ----------------------------------------------------------------------

def test_max_clique_via_atom_matches_quantifier_version():
    s = vertex_set("S")
    direct = formulas.max_clique_set(s)
    for g in graph_zoo():
        forest = optimal_elimination_forest(g)
        result = optimize(direct, g, forest, s, maximize=True)
        assert result is not None
        # Compare against the brute-force clique number.
        best = max(
            (len(sub) for sub in _all_cliques(g)), default=0
        )
        assert result.value == best, g
        assert props.is_clique(g, result.witness)


def _all_cliques(graph):
    vertices = graph.vertices()
    for mask in range(1 << len(vertices)):
        subset = [vertices[i] for i in range(len(vertices)) if mask >> i & 1]
        if props.is_clique(graph, subset):
            yield subset


def test_clique_atom_cheaper_than_quantifiers():
    s = vertex_set("S")
    direct = compile_formula(formulas.max_clique_set(s), (s,))
    literal = compile_formula(formulas.clique_set(s), (s,))
    g = gen.random_connected_graph(8, 6, seed=2)
    forest = dfs_elimination_forest(g)
    r1 = optimize(formulas.max_clique_set(s), g, forest, s, automaton=direct)
    r2 = optimize(formulas.clique_set(s), g, forest, s, automaton=literal)
    assert r1 is not None and r2 is not None
    assert r1.value == r2.value
    assert direct.num_classes() <= literal.num_classes()


def test_distributed_max_clique():
    from repro.distributed import optimize_pipeline

    s = vertex_set("S")
    automaton = compile_formula(formulas.max_clique_set(s), (s,))
    g = gen.random_bounded_treedepth(10, 3, seed=6, edge_prob=0.8)
    outcome = optimize_pipeline(automaton, g, d=3, maximize=True)
    assert outcome.feasible
    assert props.is_clique(g, outcome.witness)
    best = max(len(sub) for sub in _all_cliques(g))
    assert outcome.value == best
