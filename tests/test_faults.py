"""Tests for the fault-injection subsystem (repro.faults).

Covers the plan serialization contract, injector determinism, null-plan
transparency, crash semantics (including the single-crash property test
against Algorithm 2), the reliable_send/reliable_recv primitives, the
redundancy-lockstep synchronizer, trace export of every fault kind, and
the SimulationResult replay fields.
"""

import io

import pytest

from repro.congest import (
    NodeContext,
    Simulation,
    node_program,
    reliable_recv,
    reliable_send,
    run_protocol,
)
from repro.congest.metrics import RoundMetrics
from repro.distributed import build_elimination_tree
from repro.errors import CongestError, FaultToleranceExceeded
from repro.faults import (
    SYNC_OVERHEAD_BITS,
    CrashFault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    reliable_program,
)
from repro.graph import generators as gen
from repro.obs import FAULT_EVENT_KINDS, Tracer, read_events, write_jsonl


# ----------------------------------------------------------------------
# Protocols used as fixtures
# ----------------------------------------------------------------------

@node_program
def echo_min_program(ctx: NodeContext):
    """Two synchronous rounds of neighbor gossip; output the min id seen."""
    best = ctx.node
    for _ in range(2):
        ctx.send_all(("min", best))
        inbox = yield
        for payload in inbox.values():
            if isinstance(payload, tuple) and len(payload) == 2 \
                    and payload[0] == "min":
                best = min(best, payload[1])
    return best


@node_program
def chatty_program(ctx: NodeContext):
    """Many rounds of tuple traffic: a target-rich fault environment."""
    total = 0
    for i in range(12):
        ctx.send_all(("tick", i, ctx.node))
        inbox = yield
        total += len(inbox)
    return total


# ----------------------------------------------------------------------
# FaultPlan: validation + serialization
# ----------------------------------------------------------------------

def test_plan_json_round_trip():
    plan = FaultPlan(
        seed=11, drop_rate=0.1, duplicate_rate=0.05, delay_rate=0.2,
        max_delay=4, truncate_rate=0.01, budget_jitter=3,
        crashes=(CrashFault(node=2, at_round=5, restart_round=9),),
        first_round=2, last_round=40,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_rejects_bad_fields():
    with pytest.raises(CongestError):
        FaultPlan(drop_rate=1.5)
    with pytest.raises(CongestError):
        FaultPlan(max_delay=0)
    with pytest.raises(CongestError):
        FaultPlan(first_round=10, last_round=5)
    with pytest.raises(CongestError):
        CrashFault(node=1, at_round=0)
    with pytest.raises(CongestError):
        CrashFault(node=1, at_round=5, restart_round=5)
    with pytest.raises(CongestError):
        FaultPlan.from_dict({"drop_rate": 0.1, "bogus_knob": 1})
    with pytest.raises(CongestError):
        FaultPlan.from_json("not json at all {")
    with pytest.raises(CongestError):
        FaultPlan.from_json("[1, 2, 3]")


def test_plan_null_and_window():
    assert FaultPlan().is_null()
    assert not FaultPlan(drop_rate=0.01).is_null()
    assert not FaultPlan(crashes=(CrashFault(node=0, at_round=1),)).is_null()
    windowed = FaultPlan(drop_rate=0.5, first_round=3, last_round=5)
    assert not windowed.active_in(2)
    assert windowed.active_in(3)
    assert windowed.active_in(5)
    assert not windowed.active_in(6)
    assert windowed.with_seed(9).seed == 9


# ----------------------------------------------------------------------
# Injector: determinism
# ----------------------------------------------------------------------

def test_injector_replay_is_deterministic():
    plan = FaultPlan(seed=5, drop_rate=0.3, delay_rate=0.2,
                     duplicate_rate=0.2, truncate_rate=0.2)
    deliveries = [((a, b), ("msg", a, b))
                  for a in range(4) for b in range(4) if a != b]

    def one_run():
        injector = FaultInjector(plan)
        metrics = RoundMetrics(budget_bits=128)
        metrics.record_round()
        survived = [injector.process(r, list(deliveries), metrics)
                    for r in range(1, 6)]
        return survived, dict(metrics.faults_injected)

    assert one_run() == one_run()


def test_injector_different_seeds_differ():
    deliveries = [((a, b), ("msg", a)) for a in range(6) for b in (a + 1,)]
    outcomes = set()
    for seed in range(4):
        injector = FaultInjector(FaultPlan(seed=seed, drop_rate=0.5))
        metrics = RoundMetrics(budget_bits=128)
        metrics.record_round()
        survived = injector.process(1, list(deliveries), metrics)
        outcomes.add(tuple(survived))
    assert len(outcomes) > 1


# ----------------------------------------------------------------------
# Null-plan transparency
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [None, 1, 42])
def test_null_plan_is_transparent(seed):
    graph = gen.random_bounded_treedepth(8, 3, 0.6, seed=13)
    order = "arrival" if seed is None else "shuffle"
    bare = run_protocol(graph, echo_min_program, inbox_order=order, seed=seed)
    nulled = run_protocol(graph, echo_min_program, inbox_order=order,
                          seed=seed, faults=FaultPlan())
    assert nulled.outputs == bare.outputs
    assert nulled.rounds == bare.rounds
    assert nulled.metrics.total_bits == bare.metrics.total_bits
    assert nulled.metrics.total_messages == bare.metrics.total_messages
    assert nulled.metrics.total_faults == 0
    assert nulled.crashed == {}


# ----------------------------------------------------------------------
# Crash semantics
# ----------------------------------------------------------------------

def test_crash_removes_node_from_outputs():
    graph = gen.path(4)
    plan = FaultPlan(crashes=(CrashFault(node=2, at_round=2),))
    result = run_protocol(graph, chatty_program, faults=plan)
    assert result.crashed == {2: 2}
    assert 2 not in result.outputs
    assert set(result.outputs) == {0, 1, 3}
    assert result.metrics.faults_injected.get("fault-crash") == 1


def test_crash_restart_runs_fresh_program():
    graph = gen.path(3)
    plan = FaultPlan(crashes=(CrashFault(node=1, at_round=3,
                                         restart_round=5),))
    result = run_protocol(graph, chatty_program, faults=plan)
    assert result.crashed == {}  # restarted nodes are alive at the end
    assert 1 in result.outputs
    assert result.metrics.faults_injected.get("fault-crash") == 1
    assert result.metrics.faults_injected.get("fault-restart") == 1


def test_crash_at_round_one_never_starts():
    graph = gen.path(3)
    plan = FaultPlan(crashes=(CrashFault(node=0, at_round=1),))
    result = run_protocol(graph, chatty_program, faults=plan)
    assert result.crashed == {0: 1}
    assert 0 not in result.outputs


# Satellite 2: killing any single non-root node during elimination yields
# a validated tree on the surviving component or an explicit
# FaultToleranceExceeded — never a silently wrong depth.
CRASH_GRAPH = gen.random_bounded_treedepth(8, 3, 0.6, seed=21)
CRASH_ROOT = min(CRASH_GRAPH.vertices())  # min id wins leader election


@pytest.mark.parametrize("victim", sorted(
    v for v in CRASH_GRAPH.vertices() if v != CRASH_ROOT
))
@pytest.mark.parametrize("at_round", [2, 9, 25])
def test_single_crash_never_silently_wrong(victim, at_round):
    plan = FaultPlan(crashes=(CrashFault(node=victim, at_round=at_round),))
    try:
        result = build_elimination_tree(CRASH_GRAPH, 3, faults=plan)
    except FaultToleranceExceeded:
        return  # failing closed is an allowed outcome
    assert result.crashed == {victim: at_round}
    assert victim not in result.outputs
    if result.accepted:
        # build_elimination_tree already validated the forest against the
        # surviving induced subgraph; re-check the contract independently.
        survivors = CRASH_GRAPH.induced_subgraph(set(result.outputs))
        assert result.forest is not None
        result.forest.validate_for(survivors)


# ----------------------------------------------------------------------
# reliable_send / reliable_recv
# ----------------------------------------------------------------------

@node_program
def rel_pair_program(ctx: NodeContext):
    if ctx.input["role"] == "sender":
        retries = yield from reliable_send(
            ctx, ctx.input["peer"], ("data", 7), max_retries=6
        )
        return ("sent", retries)
    payload = yield from reliable_recv(
        ctx, ctx.input["peer"], max_rounds=40, linger=4
    )
    return ("got", payload)


def _rel_inputs():
    return {0: {"role": "sender", "peer": 1},
            1: {"role": "receiver", "peer": 0}}


def test_reliable_send_clean_channel_zero_retries():
    result = run_protocol(gen.path(2), rel_pair_program, inputs=_rel_inputs())
    assert result.outputs[0] == ("sent", 0)
    assert result.outputs[1] == ("got", ("data", 7))
    assert result.metrics.retransmissions == 0


def test_reliable_send_retries_through_loss():
    plan = FaultPlan(seed=3, drop_rate=0.5, last_round=6)
    result = run_protocol(gen.path(2), rel_pair_program,
                          inputs=_rel_inputs(), faults=plan, max_rounds=120)
    kind, retries = result.outputs[0]
    assert kind == "sent"
    assert retries > 0
    assert result.outputs[1] == ("got", ("data", 7))
    assert result.metrics.retransmissions == retries


def test_reliable_send_exhausts_bound():
    plan = FaultPlan(seed=0, drop_rate=1.0)

    @node_program
    def bounded(ctx: NodeContext):
        if ctx.input["role"] == "sender":
            yield from reliable_send(ctx, ctx.input["peer"], ("x",),
                                     max_retries=2)
            return True
        yield from reliable_recv(ctx, ctx.input["peer"], max_rounds=200)
        return True

    with pytest.raises(FaultToleranceExceeded):
        run_protocol(gen.path(2), bounded, inputs=_rel_inputs(),
                     faults=plan, max_rounds=500)


# ----------------------------------------------------------------------
# Redundancy-lockstep synchronizer
# ----------------------------------------------------------------------

def test_reliable_program_recovers_faultless_outputs():
    graph = gen.random_bounded_treedepth(7, 3, 0.6, seed=3)
    baseline = run_protocol(graph, echo_min_program)
    policy = RetryPolicy(attempts=5)
    plan = FaultPlan(seed=9, drop_rate=0.3)
    hardened = run_protocol(
        graph, reliable_program(echo_min_program, policy),
        budget=policy.physical_budget(256),
        max_rounds=policy.physical_max_rounds(40),
        faults=plan,
    )
    assert hardened.outputs == baseline.outputs
    assert hardened.metrics.retransmissions > 0
    assert hardened.metrics.faults_injected.get("fault-drop", 0) > 0


def test_reliable_program_fails_closed_on_total_loss():
    policy = RetryPolicy(attempts=2)
    plan = FaultPlan(seed=0, drop_rate=1.0)
    with pytest.raises(FaultToleranceExceeded):
        run_protocol(
            gen.path(3), reliable_program(echo_min_program, policy),
            budget=policy.physical_budget(256),
            max_rounds=policy.physical_max_rounds(40),
            faults=plan,
        )


def test_retry_policy_scaling():
    policy = RetryPolicy(attempts=3)
    assert policy.physical_budget(100) == 100 + SYNC_OVERHEAD_BITS
    assert policy.physical_max_rounds(10) > 30
    with pytest.raises(CongestError):
        RetryPolicy(attempts=0)


# ----------------------------------------------------------------------
# Trace export: every injected fault kind round-trips through JSONL
# ----------------------------------------------------------------------

def test_every_fault_kind_reaches_the_jsonl_trace():
    graph = gen.random_bounded_treedepth(8, 3, 0.7, seed=5)
    plan = FaultPlan(
        seed=12, drop_rate=0.25, duplicate_rate=0.25, delay_rate=0.25,
        truncate_rate=0.25, budget_jitter=8,
        crashes=(CrashFault(node=max(graph.vertices()), at_round=4,
                            restart_round=7),),
    )
    tracer = Tracer()
    result = run_protocol(graph, chatty_program, faults=plan,
                          tracer=tracer, max_rounds=200)
    tracer.finish()
    sink = io.StringIO()
    write_jsonl(tracer, sink)
    sink.seek(0)
    events = read_events(sink)
    seen_kinds = {event.kind for event in events
                  if event.kind in FAULT_EVENT_KINDS}
    assert seen_kinds == set(FAULT_EVENT_KINDS)
    # Metrics and the tracer agree on the per-kind totals.
    assert tracer.fault_counts == result.metrics.faults_injected


# ----------------------------------------------------------------------
# Simulation guard rails + replay
# ----------------------------------------------------------------------

def test_double_run_guard_names_the_api():
    sim = Simulation(gen.path(2), echo_min_program)
    sim.run()
    with pytest.raises(CongestError, match="can only be run once"):
        sim.run()


def test_result_carries_replay_fields():
    plan = FaultPlan(seed=4, drop_rate=0.2)
    graph = gen.random_bounded_treedepth(7, 3, 0.5, seed=8)
    result = run_protocol(graph, chatty_program, inbox_order="shuffle",
                          seed=17, faults=plan, max_rounds=200)
    assert result.seed == 17
    assert result.inbox_order == "shuffle"
    assert result.fault_plan == plan
    replay = run_protocol(graph, chatty_program, max_rounds=200,
                          **result.replay_args())
    assert replay.outputs == result.outputs
    assert replay.metrics.faults_injected == result.metrics.faults_injected
    assert replay.rounds == result.rounds
