"""Hypothesis differential harness for the fault-injection subsystem.

Two properties anchor the fault model:

1. **Null-plan transparency** — a plan with every rate at zero and no
   crashes is byte-for-byte invisible: outputs, round count, and traffic
   metrics are identical to a run without a fault plan at all.
2. **Never silently wrong** — under bounded transient loss with the
   redundancy-lockstep synchronizer, the distributed verdict either
   equals the sequential ground truth (``repro.mso.semantics``) or the
   run fails closed with :class:`~repro.errors.FaultToleranceExceeded`.
   A wrong verdict is a test failure; an explicit refusal is not.

CI runs this module under three fixed ``--hypothesis-seed`` values (see
.github/workflows/ci.yml), so regressions in the fault path reproduce.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra import compile_formula
from repro.congest import NodeContext, node_program, run_protocol
from repro.distributed import decide_pipeline
from repro.errors import FaultToleranceExceeded
from repro.faults import FaultPlan, RetryPolicy
from repro.graph import generators as gen
from repro.mso import formulas, semantics


@node_program
def gossip_min_program(ctx: NodeContext):
    """Two rounds of neighbor gossip; output the minimum id seen."""
    best = ctx.node
    for _ in range(2):
        ctx.send_all(("min", best))
        inbox = yield
        for payload in inbox.values():
            if isinstance(payload, tuple) and len(payload) == 2 \
                    and payload[0] == "min":
                best = min(best, payload[1])
    return best


@node_program
def tick_count_program(ctx: NodeContext):
    """Several rounds of tuple traffic; output the messages received."""
    total = 0
    for i in range(6):
        ctx.send_all(("tick", i, ctx.node))
        inbox = yield
        total += len(inbox)
    return total


@st.composite
def networks(draw, max_n=12):
    n = draw(st.integers(4, max_n))
    depth = draw(st.integers(2, 3))
    prob = draw(st.sampled_from([0.3, 0.6, 0.9]))
    seed = draw(st.integers(0, 10 ** 6))
    return gen.random_bounded_treedepth(n, depth, prob, seed), depth


DIFF_FORMULAS = [
    formulas.h_free(gen.triangle()),
    formulas.has_even_subgraph(),
]
DIFF_AUTOMATA = [compile_formula(f, ()) for f in DIFF_FORMULAS]

PROGRAMS = [gossip_min_program, tick_count_program]


@given(
    networks(),
    st.integers(0, len(PROGRAMS) - 1),
    st.sampled_from(["arrival", "shuffle", "sorted", "reversed"]),
    st.integers(0, 10 ** 6),
)
@settings(max_examples=40)
def test_zero_rate_plan_is_byte_identical(net, prog_idx, order, sim_seed):
    graph, _ = net
    program = PROGRAMS[prog_idx]
    bare = run_protocol(graph, program, inbox_order=order, seed=sim_seed)
    nulled = run_protocol(graph, program, inbox_order=order, seed=sim_seed,
                          faults=FaultPlan(seed=sim_seed))
    assert nulled.outputs == bare.outputs
    assert nulled.rounds == bare.rounds
    assert nulled.metrics.total_messages == bare.metrics.total_messages
    assert nulled.metrics.total_bits == bare.metrics.total_bits
    assert nulled.metrics.per_round_bits == bare.metrics.per_round_bits
    assert nulled.metrics.max_message_bits == bare.metrics.max_message_bits
    assert nulled.metrics.total_faults == 0
    assert nulled.metrics.retransmissions == 0


@given(
    networks(max_n=9),
    st.integers(0, len(DIFF_FORMULAS) - 1),
    st.floats(0.01, 0.10),
    st.integers(0, 10 ** 6),
    st.integers(4, 5),
)
@settings(max_examples=70)
def test_lossy_decide_agrees_or_fails_closed(net, idx, drop, fault_seed,
                                             attempts):
    graph, depth = net
    truth = semantics.evaluate(graph, DIFF_FORMULAS[idx])
    plan = FaultPlan(seed=fault_seed, drop_rate=drop)
    retry = RetryPolicy(attempts=attempts)
    try:
        outcome = decide_pipeline(DIFF_AUTOMATA[idx], graph, d=depth,
                         faults=plan, retry=retry)
    except FaultToleranceExceeded:
        return  # failing closed is within the contract
    assert not outcome.treedepth_exceeded
    assert outcome.accepted == truth
