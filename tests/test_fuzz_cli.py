"""Tests for the ``repro fuzz`` command and the fuzz runner.

Exit codes mirror ``repro faults``: 0 conformant, 1 discrepancies, 2
treedepth-promise violations, 3 harness errors (64 for usage errors, via
the shared ReproError handler in ``main``).
"""

import json

import pytest

from repro.algebra.cache import AutomatonCache
from repro.cli import main
from repro.faults import FaultPlan
from repro.graph import generators as gen
from repro.mso import formulas
from repro.obs.registry import MetricsRegistry, registry, set_registry
from repro.testkit import Case, CaseGenerator, FuzzConfig, run_fuzz, save_case
from repro.testkit.oracles import Reference


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = registry()
    set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def test_fuzz_smoke_is_clean(capsys):
    assert main(["fuzz", "--cases", "6", "--seed", "8"]) == 0
    out = capsys.readouterr().out
    assert "6 cases" in out
    assert "0 discrepancies" in out


def test_fuzz_counts_cases_in_registry():
    run_fuzz(FuzzConfig(cases=4, seed=1))
    counter = registry().get("repro_fuzz_cases_total")
    assert counter.value(source="generated") == 4


def test_fuzz_replays_corpus_first(tmp_path, capsys):
    case = CaseGenerator(3).case()
    save_case(case, str(tmp_path))
    assert main(["fuzz", "--cases", "2", "--seed", "3",
                 "--corpus", str(tmp_path)]) == 0
    assert "(1 replayed)" in capsys.readouterr().out


def test_fuzz_replay_single_file(tmp_path, capsys):
    case = Case(graph=gen.path(4), d=3, formula=formulas.acyclic(),
                workload="decide", seed=5)
    path = save_case(case, str(tmp_path), meta={"kinds": ["verdict"]})
    assert main(["fuzz", "--replay", path]) == 0
    out = capsys.readouterr().out
    assert "conformant" in out
    assert "pinned kinds: verdict" in out


def test_fuzz_replay_faulty_case_round_trips(tmp_path, capsys):
    # A case with a lossy plan exercises Session.from_replay through the
    # replay round-trip oracle (FaultPlan and RetryPolicy reconstructed
    # from their JSON encodings).
    case = Case(graph=gen.cycle(5), d=3, formula=formulas.triangle_free(),
                workload="decide", seed=7,
                plan=FaultPlan(seed=11, drop_rate=0.05), retry_attempts=3)
    path = save_case(case, str(tmp_path))
    assert main(["fuzz", "--replay", path]) == 0
    assert "conformant" in capsys.readouterr().out


def test_fuzz_replay_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "something-else", "case": {}}))
    assert main(["fuzz", "--replay", str(bad)]) == 64  # usage error


def test_fuzz_failure_writes_replay_files_and_exits_1(tmp_path, capsys):
    # A broken reference makes every case a failure; the runner must
    # shrink and emit content-addressed replay files.
    wrong = lambda case, _cache: Reference(verdict=not case.formula)
    config = FuzzConfig(cases=3, seed=2, corpus_dir=str(tmp_path),
                        max_shrinks=1, shrink_budget=40,
                        reference=wrong, metamorphic_every=0)
    report = run_fuzz(config)
    assert not report.ok
    assert report.discrepancies
    assert len(report.shrunk) == 1
    assert report.replay_files
    for path in report.replay_files:
        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["format"] == "repro-testkit-case/1"
        assert payload["meta"]["kinds"]


def test_session_from_replay_round_trip():
    import json as _json

    from repro.api import Session
    from repro.faults import RetryPolicy

    g = gen.cycle(6)
    session = Session(g, 3, seed=9, inbox_order="shuffle",
                      faults=FaultPlan(seed=2, drop_rate=0.02),
                      retry=RetryPolicy(attempts=3),
                      cache=AutomatonCache(persist=False))
    result = session.decide(formulas.triangle_free())
    encoded = _json.loads(_json.dumps(session._replay_json()))
    assert encoded["retry"] == {"attempts": 3}
    rebuilt = Session.from_replay(g, 3, encoded,
                                  cache=AutomatonCache(persist=False))
    again = rebuilt.decide(formulas.triangle_free())
    assert again.verdict == result.verdict
    assert again.rounds == result.rounds
    assert again.messages == result.messages
    # Live replay_args (with real FaultPlan/RetryPolicy objects) also work.
    live = Session.from_replay(g, 3, result.replay_args,
                               cache=AutomatonCache(persist=False))
    assert live.decide(formulas.triangle_free()).verdict == result.verdict


def test_session_from_replay_rejects_unknown_keys():
    from repro.api import Session
    from repro.errors import ReproError

    with pytest.raises(ReproError, match="unknown replay"):
        Session.from_replay(gen.path(2), 1, {"engines": "batched"})
    with pytest.raises(ReproError, match="retry"):
        Session.from_replay(gen.path(2), 1, {"retry": {"copies": 3}})
