"""Unit tests for repro.graph.generators."""

import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.graph.properties import is_acyclic, max_degree


def test_path():
    g = gen.path(5)
    assert g.num_vertices() == 5
    assert g.num_edges() == 4
    assert g.is_connected()
    assert gen.path(1).num_edges() == 0
    with pytest.raises(GraphError):
        gen.path(0)


def test_cycle():
    g = gen.cycle(4)
    assert g.num_edges() == 4
    assert all(g.degree(v) == 2 for v in g)
    with pytest.raises(GraphError):
        gen.cycle(2)


def test_star():
    g = gen.star(4)
    assert g.degree(0) == 4
    assert all(g.degree(v) == 1 for v in range(1, 5))


def test_clique():
    g = gen.clique(5)
    assert g.num_edges() == 10
    assert all(g.degree(v) == 4 for v in g)


def test_complete_bipartite():
    g = gen.complete_bipartite(2, 3)
    assert g.num_edges() == 6
    assert not g.has_edge(0, 1)
    assert g.has_edge(0, 2)


def test_grid():
    g = gen.grid(3, 4)
    assert g.num_vertices() == 12
    assert g.num_edges() == 3 * 3 + 2 * 4  # horizontal + vertical
    assert g.is_connected()


def test_complete_binary_tree():
    g = gen.complete_binary_tree(4)
    assert g.num_vertices() == 15
    assert is_acyclic(g)
    assert g.is_connected()


def test_caterpillar():
    g = gen.caterpillar(3, 2)
    assert g.num_vertices() == 3 + 6
    assert is_acyclic(g)
    assert g.is_connected()


def test_path_with_claw():
    g = gen.path_with_claw(6)
    assert g.num_vertices() == 9
    assert g.degree(0) == 4  # path neighbor + 3 claw leaves
    assert max_degree(g) == 4
    assert is_acyclic(g)


def test_fan_is_connected_and_dense_at_apex():
    g = gen.fan(6)
    assert g.degree(0) == 5
    assert g.is_connected()


def test_random_tree_is_tree():
    for seed in range(5):
        g = gen.random_tree(20, seed=seed)
        assert g.num_edges() == 19
        assert g.is_connected()
        assert is_acyclic(g)


def test_random_elimination_forest_depth_respected():
    parent = gen.random_elimination_forest(30, depth=4, seed=1)
    level = {}

    def depth_of(v):
        if v in level:
            return level[v]
        p = parent[v]
        level[v] = 1 if p is None else depth_of(p) + 1
        return level[v]

    assert all(depth_of(v) <= 4 for v in parent)
    assert sum(1 for v in parent if parent[v] is None) == 1  # connected


def test_random_bounded_treedepth_has_bounded_treedepth():
    from repro.treedepth import treedepth

    for seed in range(3):
        g = gen.random_bounded_treedepth(10, depth=3, edge_prob=0.7, seed=seed)
        assert g.is_connected()
        assert treedepth(g) <= 3


def test_tree_closure_of_path_chain():
    parent = {0: None, 1: 0, 2: 1, 3: 2}
    g = gen.tree_closure(parent)
    assert g.num_edges() == 6  # complete graph on a chain's closure
    from repro.treedepth import treedepth

    assert treedepth(g) == 4


def test_random_connected_graph():
    g = gen.random_connected_graph(15, extra_edges=5, seed=2)
    assert g.is_connected()
    assert g.num_edges() == 14 + 5


def test_random_maximal_outerplanar():
    for seed in range(4):
        n = 10
        g = gen.random_maximal_outerplanar(n, seed=seed)
        # A maximal outerplanar graph on n vertices has 2n - 3 edges.
        assert g.num_edges() == 2 * n - 3, seed
        assert g.is_connected()
        from repro.treedepth import degeneracy

        assert degeneracy(g) == 2  # outerplanar => 2-degenerate
    with pytest.raises(GraphError):
        gen.random_maximal_outerplanar(2)


def test_random_maximal_outerplanar_feeds_expansion_pipeline():
    from repro.distributed import decide_h_freeness
    from repro.expansion import depth_coloring_decomposition
    from repro.graph.properties import has_subgraph

    g = gen.random_maximal_outerplanar(9, seed=1)
    decomposition = depth_coloring_decomposition(g, p=3)
    outcome = decide_h_freeness(g, gen.triangle(), decomposition)
    assert outcome.h_free == (not has_subgraph(g, gen.triangle()))
    assert not outcome.h_free  # triangulations are full of triangles


def test_random_apex_tree():
    g = gen.random_apex_tree(8, seed=2)
    assert g.num_vertices() == 9
    assert g.degree(8) == 8
    assert g.is_connected()
    from repro.treedepth import treedepth

    assert treedepth(g) <= 1 + treedepth(gen.random_tree(8, seed=2))
    with pytest.raises(GraphError):
        gen.random_apex_tree(0)


def test_named_patterns():
    assert gen.named_pattern("triangle").num_edges() == 3
    assert gen.named_pattern("c4").num_edges() == 4
    assert gen.named_pattern("claw").num_vertices() == 4
    assert gen.named_pattern("paw").num_edges() == 4
    assert gen.named_pattern("diamond").num_edges() == 5
    with pytest.raises(GraphError):
        gen.named_pattern("nonsense")


def test_generators_are_deterministic():
    a = gen.random_bounded_treedepth(12, 3, seed=7)
    b = gen.random_bounded_treedepth(12, 3, seed=7)
    assert a == b
