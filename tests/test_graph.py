"""Unit tests for repro.graph.graph."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph, canonical_edge, disjoint_union, relabeled
from repro.graph.generators import clique, cycle, path


def test_empty_graph():
    g = Graph()
    assert g.num_vertices() == 0
    assert g.num_edges() == 0
    assert g.vertices() == []
    assert g.edges() == []


def test_add_vertex_idempotent():
    g = Graph()
    g.add_vertex(3)
    g.add_vertex(3)
    assert g.vertices() == [3]


def test_add_edge_creates_endpoints():
    g = Graph()
    g.add_edge(2, 1)
    assert g.vertices() == [1, 2]
    assert g.edges() == [(1, 2)]
    assert g.has_edge(1, 2) and g.has_edge(2, 1)


def test_canonical_edge_orders_endpoints():
    assert canonical_edge(5, 2) == (2, 5)
    assert canonical_edge(2, 5) == (2, 5)


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        canonical_edge(1, 1)
    g = Graph()
    with pytest.raises(GraphError):
        g.add_edge(4, 4)


def test_neighbors_and_degree():
    g = path(4)
    assert g.neighbors(0) == [1]
    assert g.neighbors(1) == [0, 2]
    assert g.degree(1) == 2
    assert g.degree(0) == 1


def test_unknown_vertex_raises():
    g = Graph([1])
    with pytest.raises(GraphError):
        g.neighbors(9)
    with pytest.raises(GraphError):
        g.degree(9)
    with pytest.raises(GraphError):
        g.remove_vertex(9)


def test_remove_vertex_removes_incident_edges():
    g = cycle(4)
    g.remove_vertex(0)
    assert g.num_vertices() == 3
    assert g.edges() == [(1, 2), (2, 3)]


def test_remove_edge():
    g = path(3)
    g.remove_edge(1, 0)
    assert g.edges() == [(1, 2)]
    with pytest.raises(GraphError):
        g.remove_edge(0, 1)


def test_labels_roundtrip():
    g = path(3)
    g.add_vertex_label(0, "red")
    g.add_vertex_label(0, "source")
    g.add_edge_label(0, 1, "marked")
    assert g.vertex_labels(0) == {"red", "source"}
    assert g.vertex_labels(1) == frozenset()
    assert g.has_vertex_label(0, "red")
    assert not g.has_vertex_label(1, "red")
    assert g.has_edge_label(1, 0, "marked")
    assert g.edge_labels(1, 2) == frozenset()


def test_weights_default_to_one():
    g = path(3)
    assert g.vertex_weight(0) == 1
    assert g.edge_weight(0, 1) == 1
    g.set_vertex_weight(0, 7)
    g.set_edge_weight(0, 1, -2)
    assert g.vertex_weight(0) == 7
    assert g.edge_weight(1, 0) == -2


def test_induced_subgraph_preserves_structure_labels_weights():
    g = cycle(5)
    g.add_vertex_label(1, "x")
    g.add_edge_label(1, 2, "y")
    g.set_vertex_weight(1, 3)
    g.set_edge_weight(1, 2, 9)
    h = g.induced_subgraph([1, 2, 3])
    assert h.vertices() == [1, 2, 3]
    assert h.edges() == [(1, 2), (2, 3)]
    assert h.vertex_labels(1) == {"x"}
    assert h.edge_labels(1, 2) == {"y"}
    assert h.vertex_weight(1) == 3
    assert h.edge_weight(1, 2) == 9


def test_induced_subgraph_unknown_vertex():
    with pytest.raises(GraphError):
        path(3).induced_subgraph([0, 99])


def test_without_vertices():
    g = clique(4)
    h = g.without_vertices([0])
    assert h.vertices() == [1, 2, 3]
    assert h.num_edges() == 3


def test_connected_components():
    g = Graph(range(5), [(0, 1), (2, 3)])
    assert g.connected_components() == [[0, 1], [2, 3], [4]]
    assert not g.is_connected()
    assert path(4).is_connected()


def test_bfs_distances_and_diameter():
    g = path(5)
    dist = g.bfs_distances(0)
    assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
    assert g.diameter() == 4
    assert cycle(6).diameter() == 3
    with pytest.raises(GraphError):
        Graph([0, 1]).diameter()


def test_copy_is_deep_enough():
    g = path(3)
    g.add_vertex_label(0, "a")
    h = g.copy()
    h.add_edge(0, 2)
    h.add_vertex_label(0, "b")
    assert not g.has_edge(0, 2)
    assert g.vertex_labels(0) == {"a"}
    assert g != h


def test_equality():
    assert path(3) == path(3)
    assert path(3) != cycle(3)


def test_relabeled():
    g = path(3)
    g.add_vertex_label(0, "a")
    g.set_vertex_weight(2, 5)
    g.add_edge_label(0, 1, "e")
    g.set_edge_weight(1, 2, 4)
    h = relabeled(g, {0: 10, 1: 11, 2: 12})
    assert h.vertices() == [10, 11, 12]
    assert h.edges() == [(10, 11), (11, 12)]
    assert h.vertex_labels(10) == {"a"}
    assert h.vertex_weight(12) == 5
    assert h.edge_labels(10, 11) == {"e"}
    assert h.edge_weight(11, 12) == 4


def test_relabeled_requires_injective():
    with pytest.raises(GraphError):
        relabeled(path(3), {0: 1})


def test_disjoint_union():
    g = disjoint_union(path(2), path(3))
    assert g.num_vertices() == 5
    assert g.edges() == [(0, 1), (2, 3), (3, 4)]
    assert len(g.connected_components()) == 2


def test_iteration_protocols():
    g = path(3)
    assert list(g) == [0, 1, 2]
    assert len(g) == 3
    assert 1 in g and 9 not in g
    assert "n=3" in repr(g)


def test_incident_edges():
    g = cycle(4)
    assert g.incident_edges(0) == [(0, 1), (0, 3)]
