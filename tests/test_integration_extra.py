"""Additional integration coverage: less-common problems, failure paths,
multi-variable counting, and weighted/labeled corner cases."""

import pytest

from repro.algebra import (
    check,
    check_assignment,
    compile_formula,
    compile_with_singletons,
    count,
    optimize,
)
from repro.errors import ReproError
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import (
    Adj,
    Inc,
    and_,
    edge,
    edge_set,
    evaluate,
    exists,
    formulas,
    vertex,
    vertex_set,
)
from repro.treedepth import EliminationForest, optimal_elimination_forest


def forest_of(g):
    return optimal_elimination_forest(g)


# ----------------------------------------------------------------------
# More optimization problems from the paper's Section 1.1 list
# ----------------------------------------------------------------------

def test_maximum_clique():
    s = vertex_set("S")
    formula = formulas.clique_set(s)
    for g, expected in [(gen.clique(4), 4), (gen.paw(), 3), (gen.path(4), 2),
                        (gen.cycle(5), 2)]:
        result = optimize(formula, g, forest_of(g), s, maximize=True)
        assert result is not None
        assert result.value == expected, g
        assert props.is_clique(g, result.witness)


def test_maximum_induced_forest():
    s = vertex_set("S")
    formula = formulas.induced_forest(s)
    for g in [gen.cycle(5), gen.diamond(), gen.clique(4)]:
        result = optimize(formula, g, forest_of(g), s, maximize=True)
        assert result is not None
        fvs, _ = props.min_feedback_vertex_set(g)
        assert result.value == g.num_vertices() - fvs
        assert props.is_acyclic(g.induced_subgraph(result.witness))


def test_min_blue_dominating_reds():
    g = gen.star(4)
    g.add_vertex_label(0, "blue")
    g.add_vertex_label(1, "blue")
    for leaf in (1, 2, 3, 4):
        g.add_vertex_label(leaf, "red")
    s = vertex_set("S")
    formula = formulas.dominated_reds_by_blues(s)
    result = optimize(formula, g, forest_of(g), s, maximize=False)
    assert result is not None
    assert result.witness == frozenset({0})
    assert result.value == 1


def test_perfect_matching_selection():
    m = edge_set("M")
    formula = formulas.perfect_matching(m)
    g = gen.cycle(6)
    result = optimize(formula, g, forest_of(g), m, maximize=True)
    assert result is not None
    assert props.is_perfect_matching(g, result.witness)


def test_spanning_tree_on_larger_cycle_with_weights():
    g = gen.cycle(6)
    for i, (u, v) in enumerate(g.edges()):
        g.set_edge_weight(u, v, i + 1)
    t = edge_set("T")
    formula = formulas.spanning_tree(t)
    result = optimize(formula, g, forest_of(g), t, maximize=False)
    assert result is not None
    assert result.value == props.min_spanning_tree_weight(g)
    assert props.is_spanning_tree(g, result.witness)


# ----------------------------------------------------------------------
# Counting with multiple and mixed variables
# ----------------------------------------------------------------------

def test_count_incident_pairs():
    x, e = vertex("x"), edge("e")
    formula = Inc(x, e)
    for g in [gen.path(4), gen.star(3), gen.cycle(5)]:
        got = count(formula, g, forest_of(g), (x, e))
        assert got == 2 * g.num_edges(), g  # each edge has two endpoints


def test_count_ordered_edges_as_adjacent_pairs():
    x, y = vertex("x"), vertex("y")
    formula = Adj(x, y)
    g = gen.cycle(5)
    assert count(formula, g, forest_of(g), (x, y)) == 2 * g.num_edges()


def test_count_mixed_vertex_and_set():
    # Pairs (x, S) with x isolated in S's induced graph... simpler: x in S.
    from repro.mso import In

    x, s = vertex("x"), vertex_set("S")
    formula = In(x, s)
    g = gen.path(3)
    # For each vertex x, S ranges over subsets containing x: 2^(n-1) each.
    assert count(formula, g, forest_of(g), (x, s)) == 3 * 4


def test_count_respects_labels():
    from repro.mso import HasLabel

    x = vertex("x")
    g = gen.path(4)
    g.add_vertex_label(1, "hot")
    g.add_vertex_label(3, "hot")
    assert count(HasLabel(x, "hot"), g, forest_of(g), (x,)) == 2


# ----------------------------------------------------------------------
# check_assignment with labels / marked sets
# ----------------------------------------------------------------------

def test_check_assignment_marked_spanning_tree():
    g = gen.cycle(4)
    t = edge_set("T")
    formula = formulas.spanning_tree(t)
    automaton = compile_formula(formula, (t,))
    good = frozenset({(0, 1), (1, 2), (2, 3)})
    bad = frozenset({(0, 1), (2, 3)})
    assert check_assignment(formula, g, forest_of(g), {t: good}, automaton)
    assert not check_assignment(formula, g, forest_of(g), {t: bad}, automaton)


def test_edge_labeled_counting():
    from repro.mso import HasLabel

    e = edge("e")
    g = gen.cycle(4)
    g.add_edge_label(0, 1, "backbone")
    g.add_edge_label(2, 3, "backbone")
    assert count(HasLabel(e, "backbone"), g, forest_of(g), (e,)) == 2


# ----------------------------------------------------------------------
# Failure paths
# ----------------------------------------------------------------------

def test_optimize_requires_set_variable():
    x = vertex("x")
    with pytest.raises(ReproError):
        optimize(Adj(x, x), gen.path(2), forest_of(gen.path(2)), x)


def test_optimize_rejects_wrong_scope_automaton():
    s = vertex_set("S")
    other = vertex_set("T")
    automaton = compile_formula(formulas.independent_set(other), (other,))
    with pytest.raises(ReproError):
        optimize(
            formulas.independent_set(s),
            gen.path(2),
            forest_of(gen.path(2)),
            s,
            automaton=automaton,
        )


def test_run_states_requires_vertices():
    from repro.algebra import run_states

    automaton = compile_formula(formulas.acyclic(), ())
    with pytest.raises(ReproError):
        run_states(automaton, Graph(), EliminationForest({}))


def test_count_on_empty_graph_falls_back():
    x = vertex("x")
    assert count(Adj(x, x), Graph(), EliminationForest({}), (x,)) == 0


def test_optimize_on_empty_graph():
    s = vertex_set("S")
    assert optimize(formulas.independent_set(s), Graph(), EliminationForest({}), s) is None


# ----------------------------------------------------------------------
# Negative weights (the paper allows w : V ∪ E -> Z)
# ----------------------------------------------------------------------

def test_negative_weights_max_independent_set():
    g = gen.path(5)
    weights = {0: 3, 1: -1, 2: 4, 3: -2, 4: 5}
    for v, w in weights.items():
        g.set_vertex_weight(v, w)
    s = vertex_set("S")
    formula = formulas.independent_set(s)
    result = optimize(formula, g, forest_of(g), s, maximize=True)
    from repro.mso import optimize as brute

    expected = brute(g, formula, s, maximize=True, weight=weights)
    assert result is not None and expected is not None
    assert result.value == expected[0] == 12  # {0, 2, 4}


def test_negative_weight_edges_mst_style():
    g = gen.cycle(4)
    g.set_edge_weight(0, 1, -5)
    g.set_edge_weight(1, 2, 2)
    g.set_edge_weight(2, 3, 2)
    g.set_edge_weight(0, 3, 2)
    t = edge_set("T")
    formula = formulas.spanning_tree(t)
    result = optimize(formula, g, forest_of(g), t, maximize=False)
    assert result is not None
    assert result.value == -1  # -5 + 2 + 2
    assert (0, 1) in result.witness


def test_distributed_negative_weights():
    from repro.distributed import optimize_pipeline

    g = gen.star(4)
    g.set_vertex_weight(0, -10)
    s = vertex_set("S")
    automaton = compile_formula(formulas.dominating_set(s), (s,))
    outcome = optimize_pipeline(automaton, g, d=2, maximize=False)
    assert outcome.feasible
    # Taking the center *and* nothing else costs -10; any leaf-only
    # dominating set costs >= 4.
    assert outcome.value == -10
    assert outcome.witness == frozenset({0})


# ----------------------------------------------------------------------
# Edge labels through the distributed pipeline
# ----------------------------------------------------------------------

def test_distributed_edge_labels():
    from repro.distributed import decide_pipeline
    from repro.mso import parse

    g = gen.path(4)
    g.add_edge_label(1, 2, "backbone")
    formula = parse("exists e:E . label(backbone, e)")
    automaton = compile_formula(formula, ())
    assert decide_pipeline(automaton, g, d=3).accepted
    bare = gen.path(4)
    assert not decide_pipeline(automaton, bare, d=3).accepted


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def test_optimization_is_deterministic():
    s = vertex_set("S")
    formula = formulas.independent_set(s)
    g = gen.cycle(6)
    results = [
        optimize(formula, g, forest_of(g), s, maximize=True) for _ in range(3)
    ]
    assert len({r.witness for r in results}) == 1


def test_distributed_matches_sequential_on_random_batch():
    from repro.distributed import decide_pipeline
    from repro.treedepth import treedepth

    formula = formulas.k_colorable(2)
    automaton = compile_formula(formula, ())
    for seed in range(5):
        g = gen.random_bounded_treedepth(9, 3, seed=seed, edge_prob=0.5)
        sequential = check(formula, g, forest_of(g), automaton)
        distributed = decide_pipeline(automaton, g, d=3)
        assert not distributed.treedepth_exceeded
        assert distributed.accepted == sequential, seed
