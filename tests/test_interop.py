"""networkx interoperability (skipped when networkx is unavailable)."""

import pytest

nx = pytest.importorskip("networkx")

from repro.errors import GraphError
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph.interop import from_networkx, to_networkx
from repro.graph.properties import count_triangles


def test_roundtrip_plain():
    g = gen.cycle(5)
    assert from_networkx(to_networkx(g)) == g


def test_roundtrip_labels_weights():
    g = gen.path(3)
    g.add_vertex_label(0, "red")
    g.set_vertex_weight(1, 7)
    g.add_edge_label(0, 1, "fast")
    g.set_edge_weight(1, 2, -2)
    assert from_networkx(to_networkx(g)) == g


def test_from_networkx_builtin_generators():
    g = from_networkx(nx.petersen_graph())
    assert g.num_vertices() == 10
    assert g.num_edges() == 15
    assert all(g.degree(v) == 3 for v in g)
    assert count_triangles(g) == 0


def test_from_networkx_rejects_self_loops():
    loopy = nx.Graph()
    loopy.add_edge(1, 1)
    with pytest.raises(GraphError):
        from_networkx(loopy)


def test_pipeline_on_networkx_import():
    # An nx graph can be fed straight into the distributed pipeline.
    from repro.algebra import compile_formula
    from repro.distributed import decide_pipeline
    from repro.mso import formulas

    g = from_networkx(nx.balanced_tree(2, 3))  # binary tree, depth 4
    automaton = compile_formula(formulas.acyclic(), ())
    outcome = decide_pipeline(automaton, g, d=4)
    assert not outcome.treedepth_exceeded
    assert outcome.accepted
