"""Treedepth kernelization: type computation, pruning, preservation."""

import pytest

from repro.algebra import check, compile_formula
from repro.errors import DecompositionError
from repro.graph import Graph
from repro.graph import generators as gen
from repro.kernel import kernelize, subtree_signatures
from repro.mso import evaluate, formulas
from repro.treedepth import best_heuristic_forest, dfs_elimination_forest


def star_forest(leaves):
    g = gen.star(leaves)
    from repro.treedepth import EliminationForest

    forest = EliminationForest({0: None, **{i: 0 for i in range(1, leaves + 1)}})
    return g, forest


def test_signatures_identify_isomorphic_siblings():
    g, forest = star_forest(5)
    sigs = subtree_signatures(g, forest, threshold=2)
    leaf_sigs = {sigs[i] for i in range(1, 6)}
    assert len(leaf_sigs) == 1  # all leaves look the same
    assert sigs[0] != sigs[1]


def test_signatures_distinguish_labels():
    g, forest = star_forest(3)
    g.add_vertex_label(1, "special")
    sigs = subtree_signatures(g, forest, threshold=2)
    assert sigs[1] != sigs[2]
    assert sigs[2] == sigs[3]


def test_signatures_cap_multiplicities():
    small_g, small_f = star_forest(3)
    big_g, big_f = star_forest(50)
    t = 3
    assert (
        subtree_signatures(small_g, small_f, t)[0]
        == subtree_signatures(big_g, big_f, t)[0]
    )


def test_threshold_validation():
    g, forest = star_forest(2)
    with pytest.raises(DecompositionError):
        subtree_signatures(g, forest, 0)


def test_kernelize_star_shrinks_to_threshold():
    g, forest = star_forest(40)
    kernel = kernelize(g, forest, threshold=3)
    assert kernel.graph.num_vertices() == 4  # center + 3 leaves
    assert len(kernel.removed) == 37
    kernel.forest.validate_for(kernel.graph)


def test_kernel_size_independent_of_n():
    sizes = []
    for leaves in (10, 100, 1000):
        g, forest = star_forest(leaves)
        sizes.append(kernelize(g, forest, threshold=4).graph.num_vertices())
    assert len(set(sizes)) == 1


def test_kernel_preserves_fo_formulas_with_sufficient_threshold():
    # degree > 2 uses 4 nested element quantifiers: t = 4 suffices.
    formula = formulas.exists_vertex_of_degree_greater(2)
    automaton = compile_formula(formula, ())
    for g in [gen.star(10), gen.caterpillar(4, 5),
              gen.random_bounded_treedepth(20, 3, seed=5)]:
        forest = best_heuristic_forest(g)
        kernel = kernelize(g, forest, threshold=4)
        original = check(formula, g, forest, automaton)
        reduced = check(formula, kernel.graph, kernel.forest, automaton)
        assert original == reduced, g


def test_kernel_too_small_threshold_changes_verdicts():
    # With threshold 2, star(5) collapses to star(2): "degree > 2" flips.
    g, forest = star_forest(5)
    formula = formulas.exists_vertex_of_degree_greater(2)
    kernel = kernelize(g, forest, threshold=2)
    assert evaluate(g, formula)
    assert not evaluate(kernel.graph, formula)


def test_kernel_preserves_catalog_on_random_graphs():
    cases = [
        (formulas.acyclic(), 2),
        (formulas.h_free(gen.triangle()), 3),
        (formulas.k_colorable(2), 3),
    ]
    for formula, t in cases:
        automaton = compile_formula(formula, ())
        for seed in range(4):
            g = gen.random_bounded_treedepth(18, 3, seed=seed, edge_prob=0.4)
            forest = dfs_elimination_forest(g)
            kernel = kernelize(g, forest, threshold=t)
            assert check(formula, g, forest, automaton) == check(
                formula, kernel.graph, kernel.forest, automaton
            ), (formula, seed)


def test_kernel_preservation_property_based():
    from hypothesis import given, settings, strategies as st

    formula = formulas.acyclic()
    automaton = compile_formula(formula, ())

    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    @settings(max_examples=40)
    def run(seed, threshold):
        g = gen.random_bounded_treedepth(16, 3, seed=seed, edge_prob=0.4)
        forest = dfs_elimination_forest(g)
        kernel = kernelize(g, forest, threshold)
        assert check(formula, g, forest, automaton) == check(
            formula, kernel.graph, kernel.forest, automaton
        )

    run()


def test_kernel_of_already_small_graph_is_identity():
    g = gen.path(4)
    forest = dfs_elimination_forest(g)
    kernel = kernelize(g, forest, threshold=3)
    assert kernel.graph == g
    assert kernel.removed == ()
