"""Tests for the repro.lint CONGEST-conformance analyzer."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.distributed.elimination import elimination_tree_program
from repro.lint import (
    RULES,
    LintError,
    check_module,
    check_paths,
    check_program,
    check_registered,
    check_source,
    discover_programs,
    is_node_program,
)
from repro.lint.astutils import ModuleInfo

FIXTURES = Path(__file__).parent / "lint_fixtures"
PROTOCOL_PATHS = [
    "src/repro/distributed",
    "src/repro/congest/primitives.py",
]


# -- golden fixtures: one bad + one near-miss per rule -----------------------

@pytest.mark.parametrize("code", sorted(RULES))
def test_bad_fixture_trips_only_its_rule(code):
    findings = check_module(str(FIXTURES / f"{code.lower()}_bad.py"))
    assert findings, f"{code} bad fixture produced no findings"
    assert {f.code for f in findings} == {code}


@pytest.mark.parametrize("code", sorted(RULES))
def test_near_miss_fixture_is_clean(code):
    assert check_module(str(FIXTURES / f"{code.lower()}_ok.py")) == []


def test_rl001_catches_each_locality_channel():
    findings = check_module(str(FIXTURES / "rl001_bad.py"))
    messages = "\n".join(f.message for f in findings)
    assert "captured from an enclosing scope" in messages
    assert "module-level mutable state" in messages
    assert "module-level Graph" in messages
    assert "ctx._simulation" in messages
    assert "global TOTAL" in messages
    assert "parameter 'graph' is a Graph" in messages


def test_rl002_catches_each_nondeterminism_channel():
    findings = check_module(str(FIXTURES / "rl002_bad.py"))
    messages = "\n".join(f.message for f in findings)
    assert "random.randrange" in messages
    assert "hash()" in messages
    assert "was built from an unordered collection" in messages
    assert "keeps the last matching element" in messages


def test_rl003_catches_each_round_structure_channel():
    findings = check_module(str(FIXTURES / "rl003_bad.py"))
    messages = "\n".join(f.message for f in findings)
    assert "inside a loop that never yields" in messages
    assert "second send to the same neighbor" in messages
    assert "no reachable yield afterwards" in messages


def test_rl004_reports_payload_paths():
    findings = check_module(str(FIXTURES / "rl004_bad.py"))
    messages = [f.message for f in findings]
    assert any(m.startswith("payload[1]: 'weights' is a list") for m in messages)
    assert any(m.startswith("payload[0]: float") for m in messages)
    assert any(m.startswith("payload[1]: dict") for m in messages)
    assert any("true division" in m for m in messages)


# -- noqa suppressions -------------------------------------------------------

BAD_SEND = """
from repro.congest import NodeContext, node_program

@node_program
def program(ctx: NodeContext):
    ctx.send_all([1, 2]){noqa}
    yield
    return None
"""


def test_noqa_with_code_suppresses():
    noisy = check_source(BAD_SEND.format(noqa=""))
    assert [f.code for f in noisy] == ["RL004"]
    assert check_source(BAD_SEND.format(noqa="  # repro: noqa[RL004]")) == []


def test_bare_noqa_suppresses_everything():
    assert check_source(BAD_SEND.format(noqa="  # repro: noqa")) == []


def test_noqa_for_other_rule_does_not_suppress():
    findings = check_source(BAD_SEND.format(noqa="  # repro: noqa[RL001]"))
    assert [f.code for f in findings] == ["RL004"]


def test_noqa_is_line_scoped():
    src = BAD_SEND.format(noqa="") + "\n# repro: noqa\n"
    assert [f.code for f in check_source(src)] == ["RL004"]


# -- program discovery -------------------------------------------------------

def test_discovery_finds_decorated_and_generator_programs():
    src = (
        "from repro.congest import NodeContext, node_program\n"
        "@node_program\n"
        "def a(ctx):\n"
        "    return 1\n"
        "def b(ctx: NodeContext):\n"
        "    yield\n"
        "    return 2\n"
        "def helper(x):\n"
        "    yield x\n"
        "def factory():\n"
        "    def inner(ctx):\n"
        "        yield\n"
        "    return inner\n"
        "class C:\n"
        "    def method(self, ctx):\n"
        "        yield\n"
    )
    module = ModuleInfo.from_source(src, "<test>")
    names = {p.qualname for p in discover_programs(module)}
    assert names == {"a", "b", "factory.<locals>.inner"}


def test_is_node_program_rejects_plain_functions():
    import ast

    tree = ast.parse("def f(x):\n    return x\n")
    assert not is_node_program(tree.body[0])


# -- the real tree is lint-clean --------------------------------------------

def test_protocol_modules_lint_clean():
    assert check_paths(PROTOCOL_PATHS) == []


def test_check_program_on_live_function():
    assert check_program(elimination_tree_program) == []


def test_check_program_flags_bad_fixture_function():
    spec = importlib.util.spec_from_file_location(
        "rl004_bad_fixture", FIXTURES / "rl004_bad.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    findings = check_program(module.program)
    assert findings and {f.code for f in findings} == {"RL004"}


def test_check_registered_covers_real_protocols():
    import repro.distributed  # noqa: F401  (registers the node programs)

    real = [
        f
        for f in check_registered()
        if "lint_fixtures" not in f.path and "repro" in f.path
    ]
    assert real == []


def test_select_and_unknown_rule():
    findings = check_module(
        str(FIXTURES / "rl003_bad.py"), select=["RL004"]
    )
    assert findings == []
    with pytest.raises(LintError):
        check_module(str(FIXTURES / "rl003_bad.py"), select=["RL999"])


# -- CLI ---------------------------------------------------------------------

def test_cli_lint_exit_codes(capsys):
    assert cli_main(["lint", *PROTOCOL_PATHS]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out
    assert cli_main(["lint", str(FIXTURES / "rl002_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "RL002" in out


def test_cli_lint_json(capsys):
    code = cli_main(["lint", "--format", "json", str(FIXTURES / "rl004_bad.py")])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    assert all(f["code"] == "RL004" for f in payload["findings"])


def test_cli_lint_select_and_list_rules(capsys):
    assert cli_main(["lint", "--select", "RL004",
                     str(FIXTURES / "rl003_bad.py")]) == 0
    capsys.readouterr()
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_cli_lint_missing_path(capsys):
    assert cli_main(["lint", "tests/lint_fixtures/does_not_exist.py"]) == 2
