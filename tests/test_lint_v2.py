"""Tests for the lint v2 interprocedural layer: RL006–RL009 and friends.

Covers the bit-width certifier (RL006), the round-bound rule (RL007),
nondeterminism taint (RL008), the static-vs-observed conformance gate
(RL009 / ``--verify-runs``), interprocedural noqa semantics, unused-noqa
detection, SARIF output, and the astutils regressions (walrus-bound
inboxes, ``match`` captures, decorated nested functions).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import Session
from repro.graph import generators as gen
from repro.lint import (
    RULES,
    Width,
    certify_program,
    check_program,
    check_source,
    find_unused_noqa,
    to_sarif,
    verify_runs,
)
from repro.lint.analyzer import _expanded, discover_programs
from repro.lint.astutils import ModuleInfo
from repro.lint.conformance import BoundExprError, eval_bound_expr
from repro.mso import formulas

REPO = Path(__file__).resolve().parent.parent
DISTRIBUTED = REPO / "src" / "repro" / "distributed"


def codes(findings):
    return {f.code for f in findings}


def lint_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd or str(REPO),
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


# -- the headline acceptance criterion --------------------------------------

def all_distributed_bounds():
    bounds = []
    for path in sorted(DISTRIBUTED.glob("*.py")):
        info = ModuleInfo.from_source(path.read_text(), str(path))
        for program in discover_programs(info):
            bound = certify_program(_expanded(program))
            if bound is not None:
                bounds.append((path.name, bound))
    return bounds


def test_every_distributed_program_certifies_log_n_family():
    bounds = all_distributed_bounds()
    assert len(bounds) >= 7
    for name, bound in bounds:
        assert not bound.width.top, f"{name}:{bound.qualname} is unbounded"
        assert bound.width.family() in ("O(1)", "O(log n)"), (
            f"{name}:{bound.qualname} certifies {bound.width.family()}"
        )
        assert bound.certified, f"{name}:{bound.qualname} exceeds declaration"


def test_distributed_tree_is_clean_with_no_rl006_suppressions():
    for path in sorted(DISTRIBUTED.rglob("*.py")):
        source = path.read_text()
        info = ModuleInfo.from_source(source, str(path))
        for line, suppressed in info.noqa.items():
            assert "RL006" not in suppressed and "*" not in suppressed, (
                f"{path}:{line} suppresses the bit-budget certifier"
            )
        assert check_source(source, str(path)) == []


# -- the Width abstract domain ----------------------------------------------

def test_width_family_ranking_and_evaluation():
    assert Width(const=5).family() == "O(1)"
    assert Width(logn=2, const=3).family() == "O(log n)"
    assert Width(dlogn=1).family() == "O(d log n)"
    assert Width(top=True).family() == "⊤"
    # One logn unit at n=256 is 3 + 8 bits.
    assert Width(logn=1).evaluate(256, 3, 48) == 11
    assert Width(const=7).evaluate(10**6, 3, 48) == 7
    assert Width(msg=1).evaluate(100, 3, 48) == 48


def test_width_join_and_plus():
    a, b = Width(logn=1, const=4), Width(logn=2, d=1)
    assert a.join(b) == Width(logn=2, d=1, const=4)
    assert a.plus(b) == Width(logn=3, d=1, const=4)
    assert a.join(Width(top=True)).top


# -- RL006 bit budget -------------------------------------------------------

BOUNDED_PROGRAM = """
from repro.congest import NodeContext, node_program

@node_program
def program(ctx: NodeContext):
    inbox = yield
    total = sum(inbox.values()) if inbox else 0
    ctx.send_all(("sum", total, ctx.node))
    yield
    return total
"""


def test_rl006_silent_on_bounded_payloads():
    assert "RL006" not in codes(check_source(BOUNDED_PROGRAM))


def test_rl006_flags_declared_budget_violation():
    source = BOUNDED_PROGRAM.replace(
        "@node_program", '@node_program(bits="O(1)")'
    )
    findings = [f for f in check_source(source) if f.code == "RL006"]
    assert findings, "O(log n) payload must exceed a declared O(1) budget"
    assert "O(1)" in findings[0].message


def test_rl006_only_fires_on_declared_programs():
    source = BOUNDED_PROGRAM.replace(
        'ctx.send_all(("sum", total, ctx.node))',
        "acc = ()\n"
        "    for v in sorted(inbox):\n"
        "        acc = acc + (v,)\n"
        "    ctx.send_all(acc)",
    )
    assert "RL006" in codes(check_source(source))
    undecorated = source.replace("@node_program\n", "")
    assert "RL006" not in codes(check_source(undecorated))


def test_rl006_sees_through_helper_calls():
    source = """
from repro.congest import NodeContext, node_program

def blob(ctx):
    acc = ()
    for nb in sorted(ctx.neighbors):
        acc = acc + (nb, nb)
    return acc

@node_program
def program(ctx: NodeContext):
    ctx.send_all(("blob", blob(ctx)))
    yield
    return None
"""
    findings = [f for f in check_source(source) if f.code == "RL006"]
    assert findings, "unbounded width built in a helper must be caught"


# -- interprocedural findings and noqa --------------------------------------

HELPER_VIOLATION = """
from repro.congest import NodeContext, node_program

def announce(ctx, weights):
    ctx.send_all(("w", weights))


@node_program
def program(ctx: NodeContext):
    weights = [1, 2, 3]
    announce(ctx, weights)
    yield
    return None
"""


def test_helper_finding_carries_callsite_and_origin():
    findings = [f for f in check_source(HELPER_VIOLATION) if f.code == "RL004"]
    assert findings
    f = findings[0]
    assert "in inlined helper 'announce'" in f.message
    assert f.callsites, "an inlined finding must record its call site"
    assert "via call at line" in f.format()


def test_noqa_at_helper_definition_suppresses():
    source = HELPER_VIOLATION.replace(
        'ctx.send_all(("w", weights))',
        'ctx.send_all(("w", weights))  # repro: noqa[RL004]',
    )
    assert "RL004" not in codes(check_source(source))


def test_noqa_at_call_site_suppresses():
    source = HELPER_VIOLATION.replace(
        "    announce(ctx, weights)",
        "    announce(ctx, weights)  # repro: noqa[RL004]",
    )
    assert "RL004" not in codes(check_source(source))


def test_find_unused_noqa(tmp_path):
    used = HELPER_VIOLATION.replace(
        "    announce(ctx, weights)",
        "    announce(ctx, weights)  # repro: noqa[RL004]",
    )
    target = tmp_path / "mod.py"
    content = (
        used + "\n\nTABLE = {}  # repro: noqa[RL003]\nX = 1  # repro: noqa\n"
    )
    target.write_text(content)
    lines = content.splitlines()
    table_line = lines.index("TABLE = {}  # repro: noqa[RL003]") + 1
    unused = find_unused_noqa([str(target)])
    assert [(u.line, u.code) for u in unused] == [
        (table_line, "RL003"),
        (table_line + 1, "*"),
    ]
    assert "unused suppression" in unused[0].format()


# -- RL007 / RL008 ----------------------------------------------------------

def test_rl007_flags_exitless_send_loop():
    source = """
from repro.congest import NodeContext, node_program

@node_program
def program(ctx: NodeContext):
    while True:
        ctx.send_all(("ping", 1))
        yield
"""
    assert "RL007" in codes(check_source(source))


def test_rl008_catches_two_hop_order_chain_and_clock():
    source = """
import time
from repro.congest import NodeContext, node_program

@node_program
def program(ctx: NodeContext):
    inbox = yield
    first = list(inbox)
    relay = first
    stamp = time.monotonic()
    ctx.send_all(("pick", relay[0]))
    yield
    return stamp
"""
    findings = [f for f in check_source(source) if f.code == "RL008"]
    messages = " / ".join(f.message for f in findings)
    assert "relay" in messages
    assert "time.monotonic" in messages


def test_rl008_silent_on_cleansed_chain():
    source = """
from repro.congest import NodeContext, node_program

@node_program
def program(ctx: NodeContext):
    inbox = yield
    first = sorted(inbox)
    relay = first
    ctx.send_all(("pick", relay[0]))
    yield
    return None
"""
    assert "RL008" not in codes(check_source(source))


# -- astutils regressions ---------------------------------------------------

def test_walrus_bound_inbox_is_recognized():
    source = """
from repro.congest import NodeContext, node_program

@node_program
def program(ctx: NodeContext):
    while (inbox := (yield)) is not None:
        ctx.send_all(("order", list(inbox)[0]))
        break
    yield
    return None
"""
    assert "RL002" in codes(check_source(source))


def test_match_capture_names_are_bound_not_global_reads():
    source = """
from repro.congest import NodeContext, node_program

@node_program
def program(ctx: NodeContext):
    inbox = yield
    msg = inbox.get(0)
    match msg:
        case ("tag", value):
            ctx.send_all(("fwd", value))
        case [head, *rest]:
            ctx.send_all(("list", head, len(rest)))
        case {"k": v, **extra}:
            ctx.send_all(("map", v, len(extra)))
    yield
    return None
"""
    assert "RL001" not in codes(check_source(source))


def test_decorator_expressions_of_nested_functions_are_scanned():
    source = """
import time
from repro.congest import NodeContext, node_program

def deco(_stamp):
    def wrap(fn):
        return fn
    return wrap


@node_program
def program(ctx: NodeContext):
    @deco(time.monotonic())
    def helper():
        return 1
    ctx.send_all(("h", helper()))
    yield
    return None
"""
    findings = [f for f in check_source(source) if f.code == "RL008"]
    assert any("time.monotonic" in f.message for f in findings)


# -- check_program on methods and alias registrations -----------------------

def test_check_program_on_alias_registered_program(tmp_path, monkeypatch):
    target = tmp_path / "aliased_mod.py"
    target.write_text(
        """
from repro.congest import NodeContext, node_program

@node_program(name="custom-alias")
def program(ctx: NodeContext):
    inbox = yield
    ctx.send_all(("pick", list(inbox)[0]))
    yield
    return None
"""
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    import aliased_mod

    findings = check_program(aliased_mod.program)
    assert "RL002" in codes(findings)
    assert all(f.program == "program" for f in findings)


def test_class_methods_are_not_node_programs(tmp_path, monkeypatch):
    source = """
from repro.congest import NodeContext, node_program

class Proto:
    @node_program
    def run(self, ctx: NodeContext):
        inbox = yield
        ctx.send_all(("pick", list(inbox)[0]))
        yield
        return None
"""
    assert check_source(source) == []
    target = tmp_path / "method_mod.py"
    target.write_text(source)
    monkeypatch.syspath_prepend(str(tmp_path))
    import method_mod

    assert check_program(method_mod.Proto.run) == []


# -- RL009: eval_bound_expr -------------------------------------------------

def test_eval_bound_expr():
    assert eval_bound_expr("200 + 40*4**d + 4*n", n=9, d=2) == 876
    assert eval_bound_expr("10", n=1, d=1) == 10
    with pytest.raises(BoundExprError):
        eval_bound_expr("n + m", n=1, d=1)
    with pytest.raises(BoundExprError):
        eval_bound_expr("__import__('os')", n=1, d=1)
    with pytest.raises(BoundExprError):
        eval_bound_expr("2**1000", n=1, d=1)


# -- RL009: verify_runs end to end ------------------------------------------

@pytest.fixture(scope="module")
def recorded_run(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("runs")
    result = Session(gen.grid(3, 3), d=4, record=str(store_dir)).decide(
        formulas.triangle_free()
    )
    assert result.verdict is True
    return store_dir


def test_verify_runs_passes_on_fresh_run(recorded_run):
    outcome = verify_runs(str(recorded_run))
    assert outcome.ok
    assert outcome.checked == 1
    assert outcome.skipped == 0


def _doctor(store_dir, tmp_path, **metric_overrides):
    lines = (store_dir / "runs.jsonl").read_text().splitlines()
    record = json.loads(lines[-1])
    record["metrics"].update(metric_overrides)
    record["run_id"] = "doctored" + record["run_id"][8:]
    doctored = tmp_path / "doctored"
    doctored.mkdir()
    (doctored / "runs.jsonl").write_text(json.dumps(record) + "\n")
    return doctored


def test_verify_runs_fails_on_inflated_bits(recorded_run, tmp_path):
    doctored = _doctor(recorded_run, tmp_path, max_message_bits=10**6)
    outcome = verify_runs(str(doctored))
    assert not outcome.ok
    assert any("max_payload_bits" in f.message for f in outcome.findings)
    assert all(f.code == "RL009" for f in outcome.findings)


def test_verify_runs_fails_on_inflated_rounds(recorded_run, tmp_path):
    doctored = _doctor(recorded_run, tmp_path, rounds=10**9)
    outcome = verify_runs(str(doctored))
    assert not outcome.ok
    assert any("rounds" in f.message for f in outcome.findings)


def test_verify_runs_skips_unmapped_and_faulty_workloads(tmp_path):
    from repro.faults import FaultPlan

    store_dir = tmp_path / "certify-runs"
    session = Session(gen.grid(2, 2), d=3, record=str(store_dir))
    session.certify(formulas.triangle_free())
    outcome = verify_runs(str(store_dir))
    assert outcome.checked == 0
    assert outcome.skipped == 1

    faulty_dir = tmp_path / "faulty-runs"
    plan = FaultPlan(seed=3, drop_rate=0.2)
    Session(
        gen.grid(2, 2), d=3, faults=plan, record=str(faulty_dir)
    ).decide(formulas.triangle_free())
    faulty = verify_runs(str(faulty_dir))
    assert faulty.checked == 0
    assert faulty.skipped == 1


# -- SARIF ------------------------------------------------------------------

def test_to_sarif_shape():
    findings = check_source(HELPER_VIOLATION, path="src/mod.py")
    meta = {
        code: {"name": rule.name, "summary": rule.summary}
        for code, rule in RULES.items()
    }
    doc = to_sarif(findings, meta)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    # Only rules that actually fired are listed.
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == ["RL004"]
    assert rules[0]["name"] == "payload-typing"
    result = run["results"][0]
    assert result["ruleId"] == "RL004"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/mod.py"
    assert location["region"]["startLine"] > 0


# -- CLI --------------------------------------------------------------------

def test_cli_list_rules_includes_rl009():
    proc = lint_cli("--list-rules")
    assert proc.returncode == 0
    assert "RL009" in proc.stdout
    assert "static-vs-observed" in proc.stdout


def test_cli_sarif_output_is_json():
    proc = lint_cli("--format", "sarif", "tests/lint_fixtures/rl004_bad.py")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"]


def test_cli_show_unused_noqa(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("X = 1  # repro: noqa[RL004]\n")
    proc = lint_cli("--show-unused-noqa", str(target))
    assert proc.returncode == 1
    assert "unused suppression" in proc.stdout
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    assert lint_cli("--show-unused-noqa", str(clean)).returncode == 0


def test_cli_verify_runs(recorded_run, tmp_path):
    proc = lint_cli("--verify-runs", str(recorded_run))
    assert proc.returncode == 0
    assert "verified 1 run report(s)" in proc.stdout
    doctored = _doctor(recorded_run, tmp_path, max_message_bits=10**6)
    proc = lint_cli("--verify-runs", str(doctored))
    assert proc.returncode == 1
    assert "RL009" in proc.stdout
