"""Tests for the kernel state-space reduction (:mod:`repro.algebra.minimize`).

The acceptance bar: minimization never changes an answer (verdict, count,
optimum, witness) or the cross-engine byte-identity contract; redundant
kernels actually shrink; budget caps fall back to the raw automaton
instead of stalling; and the quotient map is applied per boundary level
(one state value may occur at several levels with distinct classes).
"""

import pytest

from repro.algebra import check as sequential_check
from repro.algebra import compile_formula
from repro.algebra.cache import AutomatonCache
from repro.algebra.minimize import (
    DEFAULT_BUDGET,
    MinimizationBudget,
    graph_label_alphabet,
    minimization_stats,
    minimize_automaton,
    minimized_automaton,
)
from repro.api import Session
from repro.graph import generators as gen
from repro.mso import formulas
from repro.mso import syntax as sx


@pytest.fixture(scope="module")
def network():
    return gen.random_bounded_treedepth(12, 3, seed=5)


# -- the passes themselves --------------------------------------------------

def test_acyclic_kernel_shrinks_within_budget():
    wrapper = minimize_automaton(compile_formula(formulas.acyclic()), d=3)
    assert wrapper is not None
    stats = wrapper.stats
    assert 0 < stats.states_minimized < stats.states_reachable
    assert stats.states_reachable <= stats.states_total
    assert stats.reduction > 0


def test_redundant_disjunction_collapses_to_the_single_kernel():
    phi = formulas.acyclic()
    single = minimize_automaton(compile_formula(phi), d=3)
    doubled = minimize_automaton(
        compile_formula(sx.Or((phi, phi))), d=3
    )
    assert single is not None and doubled is not None
    # φ∨φ tracks the same information twice; the quotient must collapse
    # the duplicated product states back to (at most) φ's classes.
    assert doubled.stats.states_minimized <= single.stats.states_minimized
    assert doubled.stats.reduction >= single.stats.reduction


def test_triangle_assignment_reduction_meets_the_benchmark_gate():
    formula, variables = formulas.triangle_assignment()
    wrapper = minimize_automaton(compile_formula(formula, variables), d=3)
    assert wrapper is not None
    # The acceptance bar for the state-heavy counting kernel (E6).
    assert wrapper.stats.reduction >= 0.30


def test_budget_fallback_returns_none_and_is_memoized():
    automaton = compile_formula(formulas.acyclic())
    tiny = MinimizationBudget(max_states=4)
    assert minimize_automaton(automaton, d=3, budget=tiny) is None
    assert minimized_automaton(automaton, d=3, budget=tiny) is None
    # The fallback is memoized on the automaton: a later call with the
    # default budget must NOT retry the closure for the same key.
    assert minimized_automaton(automaton, d=3) is None


def test_minimized_automaton_memoizes_per_d_and_labels():
    automaton = compile_formula(formulas.acyclic())
    first = minimized_automaton(automaton, d=3)
    assert first is not None
    assert minimized_automaton(automaton, d=3) is first
    assert minimization_stats(automaton, d=3) is first.stats
    # A different promise is a different variant (and may fall back).
    assert minimization_stats(automaton, d=2) is None


def test_stats_peek_never_triggers_the_passes():
    automaton = compile_formula(formulas.acyclic())
    assert minimization_stats(automaton, d=3) is None
    assert not hasattr(automaton, "_minimized_variants") or \
        (3, ()) not in automaton._minimized_variants


def test_graph_label_alphabet_is_sorted_union():
    g = gen.path(3)
    g.add_vertex_label(0, "red")
    g.add_edge_label(1, 2, "backbone")
    g.add_vertex_label(2, "blue")
    assert graph_label_alphabet(g) == ("backbone", "blue", "red")


# -- the forest-depth gate (regression) -------------------------------------

def test_wrapper_records_its_closure_depth():
    wrapper = minimize_automaton(compile_formula(formulas.acyclic()), d=3)
    assert wrapper is not None
    assert wrapper.closure_depth == 3


def test_deep_forest_bypasses_the_quotient():
    # Algorithm 2 recovers a depth-5 forest for C5 at d=3 (the paper
    # admits up to 2^d - 1 = 7); the closure only covers levels 0..3, so
    # the pipelines must run the raw automaton — applying the quotient
    # here once returned an infeasible vertex cover of size 2.
    var = sx.Var("C", sx.Sort.VERTEX_SET)
    phi = formulas.vertex_cover(var)
    g = gen.cycle(5)
    results = {}
    for minimize in (False, True):
        results[minimize] = Session(
            g, d=3, minimize=minimize, cache=AutomatonCache(persist=False)
        ).optimize(phi, sense="min")
    assert results[True].value == results[False].value == 3
    assert results[True].witness == results[False].witness
    # A bypassed run must not report state counts it never used.
    assert results[True].report.states_total == 0


def test_deep_forest_decide_matches_sequential():
    from repro.treedepth import best_heuristic_forest

    phi = formulas.h_free(gen.triangle())
    g = gen.cycle(5)  # depth-5 recovered forest at d=3
    expected = sequential_check(phi, g, best_heuristic_forest(g))
    for minimize in (False, True):
        result = Session(
            g, d=3, minimize=minimize, cache=AutomatonCache(persist=False)
        ).decide(phi)
        assert result.verdict == expected


# -- per-level canonicalization (regression) --------------------------------

def test_quotient_is_keyed_per_boundary_level():
    wrapper = minimized_automaton(
        compile_formula(formulas.h_free(gen.triangle())), d=3
    )
    assert wrapper is not None
    quotient = wrapper._quotient
    assert set(quotient) == {0, 1, 2, 3}
    # The same state value may appear at several levels; canon must
    # resolve through the level's own table, not a global one.
    for level, table in quotient.items():
        for state, rep in table.items():
            assert wrapper.canon(level, state) is rep


def test_h_free_agrees_with_raw_on_regression_seeds():
    # Seeds that exposed the value-keyed (level-blind) quotient bug:
    # a leaf state canonicalized through another level's class.
    phi = formulas.h_free(gen.triangle())
    for seed in (17, 24):
        g = gen.random_bounded_treedepth(16, 3, seed=seed)
        raw = Session(g, d=3, minimize=False,
                      cache=AutomatonCache(persist=False)).decide(phi)
        minimized = Session(g, d=3, minimize=True,
                            cache=AutomatonCache(persist=False)).decide(phi)
        assert minimized.verdict == raw.verdict


# -- differential agreement across workloads --------------------------------

def _graphs():
    return [
        gen.random_bounded_treedepth(10, 3, seed=s) for s in (1, 2, 3)
    ]


def test_minimized_decide_matches_raw_and_sequential(network):
    from repro.treedepth import best_heuristic_forest

    phi = formulas.acyclic()
    for g in _graphs():
        expected = sequential_check(phi, g, best_heuristic_forest(g))
        for minimize in (False, True):
            result = Session(
                g, d=3, minimize=minimize,
                cache=AutomatonCache(persist=False),
            ).decide(phi)
            assert result.verdict == expected


def test_minimized_count_matches_raw():
    formula, _variables = formulas.triangle_assignment()
    for g in _graphs():
        raw = Session(g, d=3, minimize=False,
                      cache=AutomatonCache(persist=False)).count(formula)
        minimized = Session(g, d=3, minimize=True,
                            cache=AutomatonCache(persist=False)).count(formula)
        assert minimized.count == raw.count


def test_minimized_optimize_matches_raw_including_witness():
    var = sx.Var("M", sx.Sort.EDGE_SET)
    phi = formulas.matching(var)
    for g in _graphs():
        for sense in ("max", "min"):
            raw = Session(
                g, d=3, minimize=False, cache=AutomatonCache(persist=False)
            ).optimize(phi, sense=sense)
            minimized = Session(
                g, d=3, minimize=True, cache=AutomatonCache(persist=False)
            ).optimize(phi, sense=sense)
            assert minimized.verdict == raw.verdict
            assert minimized.value == raw.value
            assert minimized.witness == raw.witness


# -- engine byte-identity (the testkit relation) ----------------------------

def test_engine_equivalence_relation_covers_both_minimize_settings():
    from repro.testkit.cases import Case
    from repro.testkit.metamorphic import engine_equivalence_relation
    from repro.testkit.oracles import sequential_reference

    g = gen.random_bounded_treedepth(12, 3, seed=3)
    case = Case(graph=g, d=3, formula=formulas.acyclic(),
                workload="decide", seed=1)
    cache = AutomatonCache(persist=False)
    ref = sequential_reference(case, cache)
    assert engine_equivalence_relation(case, cache, ref) == []


def test_pipeline_byte_identity_across_all_three_engines(network):
    from repro.distributed import decide_pipeline

    automaton = compile_formula(formulas.acyclic())
    signatures = set()
    for engine in ("naive", "batched", "vectorized"):
        out = decide_pipeline(
            automaton, network, 3, engine=engine, minimize=True
        )
        signatures.add((
            out.accepted, out.total_rounds, out.total_messages,
            out.max_message_bits, out.num_classes,
        ))
    assert len(signatures) == 1


# -- reporting --------------------------------------------------------------

def test_run_report_carries_state_counts(network):
    result = Session(
        network, d=3, cache=AutomatonCache(persist=False)
    ).decide(formulas.acyclic())
    report = result.report
    assert report.states_total > 0
    assert report.states_minimized <= report.states_reachable
    assert report.states_reachable <= report.states_total
    fallback = Session(
        network, d=3, minimize=False, cache=AutomatonCache(persist=False)
    ).decide(formulas.acyclic())
    assert fallback.report.states_total == 0
