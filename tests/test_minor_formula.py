"""Minor containment as MSO (branch sets) — one of the paper's §1.1 list.

Five nested set projections make this the heaviest catalog formula, so
the graphs here are tiny; the point is correctness, with E13 documenting
the cost of quantifier nesting.
"""

import pytest

from repro.algebra import check, compile_formula
from repro.graph import generators as gen
from repro.graph.operations import has_minor
from repro.mso import evaluate, formulas
from repro.treedepth import optimal_elimination_forest


@pytest.fixture(scope="module")
def triangle_minor_automaton():
    return compile_formula(formulas.contains_minor(gen.triangle()), ())


def test_minor_formula_matches_oracle(triangle_minor_automaton):
    formula = formulas.contains_minor(gen.triangle())
    for g in [gen.cycle(4), gen.path(4), gen.paw(), gen.star(3), gen.cycle(5)]:
        expected = has_minor(g, gen.triangle())
        got = check(
            formula, g, optimal_elimination_forest(g), triangle_minor_automaton
        )
        assert got == expected, g


def test_minor_vs_subgraph_gap(triangle_minor_automaton):
    # C4 has a K3 minor but no K3 subgraph: minors see contractions.
    g = gen.cycle(4)
    forest = optimal_elimination_forest(g)
    assert check(
        formulas.contains_minor(gen.triangle()), g, forest,
        triangle_minor_automaton,
    )
    assert check(formulas.h_free(gen.triangle()), g, forest)


def test_minor_free(triangle_minor_automaton):
    # Trees are triangle-minor-free (they are forests).
    formula = formulas.minor_free(gen.triangle())
    g = gen.star(4)
    assert check(formula, g, optimal_elimination_forest(g))


def test_minor_semantics_brute_force():
    # Cross-check the formula's brute-force semantics on a tiny case.
    formula = formulas.contains_minor(gen.path(3))
    assert evaluate(gen.path(4), formula)   # P3 is a subgraph, so a minor
    assert not evaluate(gen.path(2), formula)
