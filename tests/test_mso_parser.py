"""Tests for the MSO text parser."""

import pytest

from repro.errors import FormulaError
from repro.graph import generators as gen
from repro.mso import Sort, Var, evaluate, parse, vertex_set
from repro.mso import formulas


def test_parse_simple_quantified():
    f = parse("forall x:V . exists y:V . adj(x, y)")
    assert evaluate(gen.path(3), f)
    assert not evaluate(gen.path(3), parse("forall x:V . forall y:V . adj(x, y)"))


def test_parse_multi_decl():
    f = parse("exists x:V, y:V, z:V . (adj(x,y) & adj(y,z) & adj(z,x))")
    assert evaluate(gen.clique(3), f)
    assert not evaluate(gen.path(3), f)


def test_parse_set_quantifier_and_atoms():
    f = parse("exists X:VS . (nonempty(X) & !adj(X, X))")
    assert evaluate(gen.path(2), f)  # any single vertex


def test_parse_free_variables():
    f = parse("x in S | adj(x, S)", free={"x": Sort.VERTEX, "S": Sort.VERTEX_SET})
    g = gen.star(3)
    S = Var("S", Sort.VERTEX_SET)
    x = Var("x", Sort.VERTEX)
    assert evaluate(g, f, {x: 1, S: frozenset({0})})
    assert not evaluate(g, f, {x: 1, S: frozenset({2})})


def test_parse_precedence():
    # '&' binds tighter than '|' which binds tighter than '->'.
    f = parse("false & true | true")
    assert evaluate(gen.path(2), f)
    g = parse("false -> false | false")
    assert evaluate(gen.path(2), g)
    h = parse("true -> false")
    assert not evaluate(gen.path(2), h)


def test_parse_implication_right_assoc():
    f = parse("true -> false -> false")  # true -> (false -> false) = true
    assert evaluate(gen.path(2), f)


def test_parse_iff():
    assert evaluate(gen.path(2), parse("true <-> true"))
    assert not evaluate(gen.path(2), parse("true <-> false"))


def test_parse_degrees():
    f = parse("exists M:ES . degrees(M, {1})")
    assert evaluate(gen.path(4), f)  # perfect matching exists
    assert not evaluate(gen.path(3), f)
    g = parse(
        "degrees(M, {2}, W)",
        free={"M": Sort.EDGE_SET, "W": Sort.VERTEX_SET},
    )
    graph = gen.path(4)
    M = Var("M", Sort.EDGE_SET)
    W = Var("W", Sort.VERTEX_SET)
    assert evaluate(graph, g, {M: frozenset(graph.edges()), W: frozenset({1, 2})})


def test_parse_label_atoms():
    g = gen.path(2)
    g.add_vertex_label(0, "red")
    f = parse("exists x:V . label(red, x)")
    assert evaluate(g, f)
    f2 = parse("forall x:V . label(red, x)")
    assert not evaluate(g, f2)
    f3 = parse("exists X:VS . (nonempty(X) & alllabel(red, X))")
    assert evaluate(g, f3)


def test_parse_crosses_touches_endpoints_subset():
    f = parse(
        "exists T:ES, A:VS, B:VS . (crosses(T, A, B) & touches(T, A)"
        " & endpoints(T, A) & subset(A, B))"
    )
    # Satisfiable on any graph with one edge: T={e}, A={u,v}, B=A... crosses
    # needs one endpoint in A and one in B with A subset of B: pick A=B={u,v}.
    assert evaluate(gen.path(2), f)


def test_parse_eq_and_in():
    f = parse("exists x:V, y:V . x = y")
    assert evaluate(gen.path(2), f)
    f2 = parse("exists x:V, S:VS . x in S")
    assert evaluate(gen.path(2), f2)


def test_parse_errors():
    with pytest.raises(FormulaError):
        parse("exists x:V")  # missing body
    with pytest.raises(FormulaError):
        parse("adj(x, y)")  # unknown variables
    with pytest.raises(FormulaError):
        parse("exists x:W . true")  # unknown sort
    with pytest.raises(FormulaError):
        parse("exists x:V . adj(x, x) extra")  # trailing tokens
    with pytest.raises(FormulaError):
        parse("exists X:VS . subset(X)")  # subset needs a superset
    with pytest.raises(FormulaError):
        parse("exists x:V . x")  # dangling term
    with pytest.raises(FormulaError):
        parse("exists E:ES . degrees(E, {9})")  # invalid count class
    with pytest.raises(FormulaError):
        parse("@@@")


def test_parse_extended_atoms():
    # intersects / covers / edgecovers / parity / clique / degrees cap.
    g = gen.clique(3)
    f = parse("exists A:VS, B:VS . (covers(A, B) & !intersects(A, B))")
    assert evaluate(g, f)  # any partition works
    f2 = parse("exists M:ES . (edgecovers(M) & degrees(M, {0, 1}))")
    assert not evaluate(g, f2)  # K3 is not 1-edge-colorable
    assert evaluate(gen.path(2), f2)
    f3 = parse("exists S:ES . (nonempty(S) & parity(S, even))")
    assert evaluate(gen.cycle(3), f3)
    assert not evaluate(gen.path(3), f3)
    f4 = parse("exists Q:VS . (clique(Q) & nonempty(Q))")
    assert evaluate(gen.path(2), f4)
    f5 = parse("exists S:ES . (nonempty(S) & degrees(S, {0, 3}, cap=4))")
    assert evaluate(gen.clique(4), f5)
    assert not evaluate(gen.cycle(4), f5)


def test_parse_parity_with_within():
    f = parse(
        "parity(M, odd, W)",
        free={"M": Sort.EDGE_SET, "W": Sort.VERTEX_SET},
    )
    g = gen.path(3)
    M = Var("M", Sort.EDGE_SET)
    W = Var("W", Sort.VERTEX_SET)
    assert evaluate(g, f, {M: frozenset({(0, 1)}), W: frozenset({0, 1})})
    assert not evaluate(g, f, {M: frozenset({(0, 1)}), W: frozenset({2})})


def test_parse_parity_errors():
    with pytest.raises(FormulaError):
        parse("exists S:ES . parity(S, sideways)")
    with pytest.raises(FormulaError):
        parse("exists S:ES . degrees(S, {1}, cap=x)")


def test_parse_matches_catalog_semantics():
    # The parsed triangle-freeness agrees with the programmatic catalog.
    parsed = parse("!(exists x:V, y:V, z:V . (adj(x,y) & adj(y,z) & adj(z,x)))")
    for g in [gen.clique(4), gen.cycle(4), gen.star(3)]:
        assert evaluate(g, parsed) == evaluate(g, formulas.triangle_free())


def test_parse_contains_pattern():
    from repro.mso import syntax as sx

    claw = parse("contains(4, {0 1, 0 2, 0 3})")
    assert claw == sx.ContainsPattern(
        num_vertices=4, edges=frozenset({(0, 1), (0, 2), (0, 3)})
    )
    assert evaluate(gen.star(3), claw)
    assert not evaluate(gen.path(3), claw)
    # Induced mode and an empty edge set both parse.
    induced = parse("contains(3, {0 1}, induced)")
    assert induced.induced
    empty = parse("contains(2, {})")
    assert empty.edges == frozenset()


def test_parse_contains_errors():
    with pytest.raises(FormulaError):
        parse("contains(2, {0 5})")  # edge outside 0..n-1
    with pytest.raises(FormulaError):
        parse("contains(2, {0 0})")  # self-loop
    with pytest.raises(FormulaError):
        parse("contains(3, {0 1}, sideways)")
