"""Brute-force semantics vs the direct graph oracles.

These tests pin down the meaning of every atom and of the formula catalog:
if these pass, the semantics module is trustworthy ground truth for the
Courcelle engine and the distributed layer.
"""

import pytest

from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import (
    Adj,
    EdgeCross,
    EndpointsIn,
    Eq,
    HasLabel,
    In,
    Inc,
    IncCounts,
    NonEmpty,
    Not,
    Subset,
    Truth,
    count_satisfying_assignments,
    edge_set,
    evaluate,
    exists,
    formulas,
    optimize,
    vertex,
    vertex_set,
)


def small_graphs():
    return [
        Graph([0]),
        gen.path(2),
        gen.path(4),
        gen.cycle(3),
        gen.cycle(4),
        gen.star(3),
        gen.clique(4),
        gen.paw(),
        gen.random_connected_graph(5, 3, seed=1),
        gen.random_connected_graph(6, 2, seed=2),
    ]


# ----------------------------------------------------------------------
# Atom semantics
# ----------------------------------------------------------------------

def test_truth():
    g = gen.path(2)
    assert evaluate(g, Truth(True))
    assert not evaluate(g, Truth(False))


def test_adj_elements():
    g = gen.path(3)
    x, y = vertex("x"), vertex("y")
    assert evaluate(g, Adj(x, y), {x: 0, y: 1})
    assert not evaluate(g, Adj(x, y), {x: 0, y: 2})
    assert not evaluate(g, Adj(x, y), {x: 0, y: 0})


def test_adj_sets_means_crossing_edge():
    g = gen.path(4)
    a, b = vertex_set("A"), vertex_set("B")
    assert evaluate(g, Adj(a, b), {a: frozenset({0}), b: frozenset({1, 3})})
    assert not evaluate(g, Adj(a, b), {a: frozenset({0}), b: frozenset({2, 3})})
    # Both endpoints inside the same set.
    assert evaluate(g, Adj(a, a), {a: frozenset({0, 1})})
    assert not evaluate(g, Adj(a, a), {a: frozenset({0, 2})})


def test_inc():
    g = gen.path(3)
    x = vertex("x")
    e = edge_set("E")
    assert evaluate(g, Inc(x, e), {x: 1, e: frozenset({(0, 1)})})
    assert not evaluate(g, Inc(x, e), {x: 2, e: frozenset({(0, 1)})})


def test_eq_and_in():
    g = gen.path(3)
    x, y = vertex("x"), vertex("y")
    s = vertex_set("S")
    assert evaluate(g, Eq(x, y), {x: 1, y: 1})
    assert not evaluate(g, Eq(x, y), {x: 1, y: 2})
    assert evaluate(g, In(x, s), {x: 1, s: frozenset({1, 2})})
    assert not evaluate(g, In(x, s), {x: 0, s: frozenset({1, 2})})


def test_subset_union():
    g = gen.path(4)
    a, b, c = vertex_set("A"), vertex_set("B"), vertex_set("C")
    env = {a: frozenset({0, 1}), b: frozenset({0}), c: frozenset({1, 2})}
    assert evaluate(g, Subset(a, (b, c)), env)
    assert not evaluate(g, Subset(a, (b,)), env)


def test_nonempty():
    g = gen.path(2)
    s = vertex_set("S")
    assert evaluate(g, NonEmpty(s), {s: frozenset({0})})
    assert not evaluate(g, NonEmpty(s), {s: frozenset()})


def test_labels():
    g = gen.path(3)
    g.add_vertex_label(1, "red")
    x = vertex("x")
    assert evaluate(g, HasLabel(x, "red"), {x: 1})
    assert not evaluate(g, HasLabel(x, "red"), {x: 0})
    s = vertex_set("S")
    from repro.mso import AllHaveLabel

    assert evaluate(g, AllHaveLabel(s, "red"), {s: frozenset({1})})
    assert not evaluate(g, AllHaveLabel(s, "red"), {s: frozenset({0, 1})})
    assert evaluate(g, AllHaveLabel(s, "red"), {s: frozenset()})


def test_edge_labels():
    g = gen.path(3)
    g.add_edge_label(0, 1, "marked")
    e = edge_set("E")
    from repro.mso import AllHaveLabel

    assert evaluate(g, AllHaveLabel(e, "marked"), {e: frozenset({(0, 1)})})
    assert not evaluate(g, AllHaveLabel(e, "marked"), {e: frozenset({(1, 2)})})


def test_edge_cross():
    g = gen.cycle(4)
    e = edge_set("E")
    a, b = vertex_set("A"), vertex_set("B")
    env = {e: frozenset({(0, 1)}), a: frozenset({0}), b: frozenset({1})}
    assert evaluate(g, EdgeCross(e, a, b), env)
    env2 = {e: frozenset({(2, 3)}), a: frozenset({0}), b: frozenset({1})}
    assert not evaluate(g, EdgeCross(e, a, b), env2)
    # Touch form (y=None).
    assert evaluate(g, EdgeCross(e, a, None), {e: frozenset({(0, 1)}), a: frozenset({0})})
    assert not evaluate(g, EdgeCross(e, a, None), {e: frozenset({(2, 3)}), a: frozenset({0})})


def test_inc_counts():
    g = gen.path(4)
    e = edge_set("E")
    matching = frozenset({(0, 1), (2, 3)})
    path_edges = frozenset(g.edges())
    assert evaluate(g, IncCounts(e, frozenset({0, 1})), {e: matching})
    assert not evaluate(g, IncCounts(e, frozenset({0, 1})), {e: path_edges})
    assert evaluate(g, IncCounts(e, frozenset({1})), {e: matching})
    within = vertex_set("W")
    assert evaluate(
        g,
        IncCounts(e, frozenset({2}), within),
        {e: path_edges, within: frozenset({1, 2})},
    )


def test_endpoints_in():
    g = gen.cycle(4)
    e = edge_set("E")
    x = vertex_set("X")
    assert evaluate(
        g, EndpointsIn(e, x), {e: frozenset({(0, 1)}), x: frozenset({0, 1, 2})}
    )
    assert not evaluate(
        g, EndpointsIn(e, x), {e: frozenset({(0, 1)}), x: frozenset({0})}
    )


def test_quantifiers():
    g = gen.star(3)
    x, y = vertex("x"), vertex("y")
    # Some vertex is adjacent to everything else: the center.
    from repro.mso import Or, forall, implies

    f = exists(x, forall(y, Or((Eq(x, y), Adj(x, y)))))
    assert evaluate(g, f)
    assert not evaluate(gen.path(4), f)


# ----------------------------------------------------------------------
# Catalog formulas vs direct oracles
# ----------------------------------------------------------------------

@pytest.mark.parametrize("g_index", range(10))
def test_triangle_free_matches_oracle(g_index):
    g = small_graphs()[g_index]
    expected = not props.has_subgraph(g, gen.triangle())
    assert evaluate(g, formulas.triangle_free()) == expected


@pytest.mark.parametrize("g_index", range(10))
def test_acyclic_matches_oracle(g_index):
    g = small_graphs()[g_index]
    assert evaluate(g, formulas.acyclic()) == props.is_acyclic(g)


def test_acyclic_textbook_agrees_on_tiny_graphs():
    for g in [gen.path(3), gen.cycle(3), gen.star(3), gen.cycle(4)]:
        assert evaluate(g, formulas.acyclic_textbook()) == props.is_acyclic(g)


@pytest.mark.parametrize("g_index", range(10))
def test_connected_matches_oracle(g_index):
    g = small_graphs()[g_index]
    assert evaluate(g, formulas.connected()) == g.is_connected()


def test_connected_on_disconnected_graph():
    from repro.graph import disjoint_union

    g = disjoint_union(gen.path(2), gen.path(2))
    assert not evaluate(g, formulas.connected())
    assert evaluate(Graph([0]), formulas.connected())


@pytest.mark.parametrize(
    "g,k",
    [
        (gen.path(4), 2),
        (gen.cycle(5), 2),
        (gen.cycle(5), 3),
        (gen.clique(4), 3),
        (gen.clique(4), 4),
    ],
)
def test_k_colorable_matches_oracle(g, k):
    assert evaluate(g, formulas.k_colorable(k)) == props.is_k_colorable(g, k)


def test_h_free_matches_oracle():
    patterns = [gen.triangle(), gen.path(3), gen.cycle(4), gen.claw()]
    for g in [gen.cycle(4), gen.clique(4), gen.star(3), gen.path(5)]:
        for h in patterns:
            expected = not props.has_subgraph(g, h)
            assert evaluate(g, formulas.h_free(h)) == expected, (g, h)


def test_h_free_induced():
    # K4 contains P3 as a subgraph but not induced.
    assert not evaluate(gen.clique(4), formulas.h_free(gen.path(3)))
    assert evaluate(gen.clique(4), formulas.h_free(gen.path(3), induced=True))


def test_degree_predicate():
    f = formulas.exists_vertex_of_degree_greater(2)
    assert evaluate(gen.star(3), f)
    assert not evaluate(gen.path(5), f)
    assert evaluate(gen.path_with_claw(4), f)


def test_properly_2_labeled():
    g = gen.path(3)
    for v, lab in [(0, "red"), (1, "blue"), (2, "red")]:
        g.add_vertex_label(v, lab)
    assert evaluate(g, formulas.properly_2_labeled())
    bad = gen.path(3)
    for v, lab in [(0, "red"), (1, "red"), (2, "blue")]:
        bad.add_vertex_label(v, lab)
    assert not evaluate(bad, formulas.properly_2_labeled())
    unlabeled = gen.path(3)
    assert not evaluate(unlabeled, formulas.properly_2_labeled())


def test_hamiltonian_cycle_matches_oracle():
    for g in [gen.cycle(4), gen.cycle(5), gen.clique(4), gen.path(4), gen.star(3),
              Graph([0]), gen.path(2)]:
        assert (
            evaluate(g, formulas.hamiltonian_cycle_exists())
            == props.has_hamiltonian_cycle(g)
        ), g


def test_perfect_matching_matches_oracle():
    for g, expected in [
        (gen.path(4), True),
        (gen.path(3), False),
        (gen.cycle(4), True),
        (gen.cycle(5), False),
        (gen.star(3), False),
    ]:
        assert evaluate(g, formulas.has_perfect_matching()) == expected


def test_independent_set_predicate():
    g = gen.cycle(5)
    s = vertex_set("S")
    f = formulas.independent_set(s)
    assert evaluate(g, f, {s: frozenset({0, 2})})
    assert not evaluate(g, f, {s: frozenset({0, 1})})


def test_vertex_cover_predicate():
    g = gen.path(4)
    s = vertex_set("S")
    f = formulas.vertex_cover(s)
    assert evaluate(g, f, {s: frozenset({1, 2})})
    assert not evaluate(g, f, {s: frozenset({1})})


def test_dominating_set_predicate():
    g = gen.star(4)
    s = vertex_set("S")
    f = formulas.dominating_set(s)
    assert evaluate(g, f, {s: frozenset({0})})
    assert not evaluate(g, f, {s: frozenset({1})})


def test_feedback_vertex_set_predicate():
    g = gen.cycle(4)
    s = vertex_set("S")
    f = formulas.feedback_vertex_set(s)
    assert evaluate(g, f, {s: frozenset({0})})
    assert not evaluate(g, f, {s: frozenset()})
    assert evaluate(gen.path(4), f, {s: frozenset()})


def test_clique_set_predicate():
    g = gen.clique(4)
    s = vertex_set("S")
    f = formulas.clique_set(s)
    assert evaluate(g, f, {s: frozenset({0, 1, 2})})
    assert not evaluate(gen.path(3), f, {s: frozenset({0, 2})})


def test_matching_predicates():
    g = gen.path(4)
    m = edge_set("M")
    assert evaluate(g, formulas.matching(m), {m: frozenset({(0, 1), (2, 3)})})
    assert not evaluate(g, formulas.matching(m), {m: frozenset({(0, 1), (1, 2)})})
    assert evaluate(g, formulas.perfect_matching(m), {m: frozenset({(0, 1), (2, 3)})})
    assert not evaluate(g, formulas.perfect_matching(m), {m: frozenset({(0, 1)})})


def test_spanning_tree_predicate():
    g = gen.cycle(4)
    t = edge_set("T")
    f = formulas.spanning_tree(t)
    assert evaluate(g, f, {t: frozenset({(0, 1), (1, 2), (2, 3)})})
    assert not evaluate(g, f, {t: frozenset(g.edges())})  # has a cycle
    assert not evaluate(g, f, {t: frozenset({(0, 1)})})  # not spanning


def test_induced_forest_predicate():
    g = gen.cycle(4)
    s = vertex_set("S")
    f = formulas.induced_forest(s)
    assert evaluate(g, f, {s: frozenset({0, 1, 2})})
    assert not evaluate(g, f, {s: frozenset({0, 1, 2, 3})})


def test_dominated_reds_by_blues():
    g = gen.star(3)
    g.add_vertex_label(0, "blue")
    for leaf in (1, 2, 3):
        g.add_vertex_label(leaf, "red")
    s = vertex_set("S")
    f = formulas.dominated_reds_by_blues(s)
    assert evaluate(g, f, {s: frozenset({0})})
    assert not evaluate(g, f, {s: frozenset({1})})  # red vertex in S
    assert not evaluate(g, f, {s: frozenset()})  # reds undominated


# ----------------------------------------------------------------------
# Counting and optimization ground truths
# ----------------------------------------------------------------------

def test_count_triangles_via_assignments():
    formula, variables = formulas.triangle_assignment()
    for g in [gen.clique(4), gen.cycle(5), gen.paw()]:
        ordered = count_satisfying_assignments(g, formula, variables)
        assert ordered == 6 * props.count_triangles(g)


def test_optimize_max_independent_set():
    g = gen.cycle(5)
    s = vertex_set("S")
    result = optimize(g, formulas.independent_set(s), s, maximize=True)
    assert result is not None
    value, chosen = result
    assert value == 2
    assert props.is_independent_set(g, chosen)


def test_optimize_min_vertex_cover():
    g = gen.path(4)
    s = vertex_set("S")
    result = optimize(g, formulas.vertex_cover(s), s, maximize=False)
    assert result is not None and result[0] == 2


def test_optimize_weighted():
    g = gen.path(3)
    s = vertex_set("S")
    weights = {0: 1, 1: 10, 2: 1}
    result = optimize(
        g, formulas.independent_set(s), s, maximize=True, weight=weights
    )
    assert result is not None
    assert result[0] == 10 and result[1] == frozenset({1})


def test_optimize_infeasible_returns_none():
    g = gen.path(2)
    s = vertex_set("S")
    from repro.mso import and_

    impossible = and_(formulas.independent_set(s), Truth(False))
    assert optimize(g, impossible, s) is None
