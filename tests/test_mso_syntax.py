"""Tests for the MSO AST: construction, validation, static analysis."""

import pytest

from repro.errors import FormulaError
from repro.mso import (
    Adj,
    And,
    Eq,
    Exists,
    Forall,
    In,
    Inc,
    IncCounts,
    NonEmpty,
    Not,
    Or,
    Sort,
    Subset,
    Truth,
    Var,
    and_,
    distinct,
    edge,
    edge_set,
    exists,
    forall,
    free_variables,
    iff,
    implies,
    or_,
    quantifier_depth,
    validate,
    vertex,
    vertex_set,
)


def test_sort_helpers():
    assert Sort.VERTEX_SET.is_set and not Sort.VERTEX.is_set
    assert Sort.VERTEX.is_vertex_kind and Sort.VERTEX_SET.is_vertex_kind
    assert not Sort.EDGE.is_vertex_kind
    assert Sort.VERTEX_SET.element_sort == Sort.VERTEX
    assert Sort.EDGE_SET.element_sort == Sort.EDGE
    assert Sort.VERTEX.element_sort == Sort.VERTEX


def test_constructors():
    x = vertex("x")
    assert x.sort == Sort.VERTEX
    assert edge("e").sort == Sort.EDGE
    assert vertex_set("X").sort == Sort.VERTEX_SET
    assert edge_set("E").sort == Sort.EDGE_SET


def test_and_or_flattening():
    x, y = vertex("x"), vertex("y")
    a, b, c = Adj(x, y), Eq(x, y), Truth(True)
    f = and_(a, and_(b, c))
    assert isinstance(f, And) and len(f.parts) == 3
    g = or_(a, or_(b, c))
    assert isinstance(g, Or) and len(g.parts) == 3
    assert and_() == Truth(True)
    assert or_() == Truth(False)
    assert and_(a) is a


def test_operator_overloads():
    x, y = vertex("x"), vertex("y")
    f = Adj(x, y) & Eq(x, y)
    assert isinstance(f, And)
    g = Adj(x, y) | Eq(x, y)
    assert isinstance(g, Or)
    assert isinstance(~Adj(x, y), Not)


def test_exists_forall_multi():
    x, y = vertex("x"), vertex("y")
    f = exists([x, y], Adj(x, y))
    assert isinstance(f, Exists) and isinstance(f.body, Exists)
    g = forall([x, y], Adj(x, y))
    assert isinstance(g, Forall) and isinstance(g.body, Forall)


def test_distinct():
    xs = [vertex(f"x{i}") for i in range(3)]
    f = distinct(*xs)
    assert isinstance(f, And) and len(f.parts) == 3  # C(3,2) inequalities


def test_free_variables():
    x, y = vertex("x"), vertex("y")
    s = vertex_set("S")
    assert free_variables(Adj(x, y)) == {x, y}
    assert free_variables(Exists(x, Adj(x, y))) == {y}
    assert free_variables(exists([x, y], In(x, s))) == {s}
    assert free_variables(Truth(True)) == frozenset()
    assert free_variables(Subset(s, (vertex_set("T"),))) == {s, vertex_set("T")}
    assert free_variables(IncCounts(edge_set("E"), frozenset({1}), s)) == {
        edge_set("E"),
        s,
    }


def test_quantifier_depth():
    x, y = vertex("x"), vertex("y")
    assert quantifier_depth(Adj(x, y)) == 0
    assert quantifier_depth(exists([x, y], Adj(x, y))) == 2
    assert quantifier_depth(Not(Exists(x, Forall(y, Adj(x, y))))) == 2
    assert quantifier_depth(and_(Exists(x, Truth()), Truth())) == 1


def test_validate_accepts_wellformed():
    x, y = vertex("x"), vertex("y")
    s = vertex_set("S")
    validate(exists([x, y], and_(Adj(x, y), In(x, s))), allowed_free=[s])
    validate(forall(x, implies(In(x, s), NonEmpty(s))), allowed_free=[s])


def test_validate_rejects_unbound():
    x, y = vertex("x"), vertex("y")
    with pytest.raises(FormulaError):
        validate(Adj(x, y))


def test_validate_rejects_sort_mismatch():
    e = edge("e")
    x = vertex("x")
    s = vertex_set("S")
    with pytest.raises(FormulaError):
        validate(Exists(e, Adj(e, e)))  # adj on edges
    with pytest.raises(FormulaError):
        validate(exists([x, e], Eq(x, e)))  # mixed-sort equality
    with pytest.raises(FormulaError):
        validate(Exists(s, Eq(s, s)))  # set equality via =
    with pytest.raises(FormulaError):
        validate(exists([x, s], Inc(s, x)))  # inc needs an edge side
    with pytest.raises(FormulaError):
        validate(Exists(x, In(x, x)))  # membership into non-set


def test_validate_rejects_rebinding():
    x = vertex("x")
    with pytest.raises(FormulaError):
        validate(Exists(x, Exists(x, Truth())))


def test_validate_rejects_sort_conflict_across_uses():
    x_as_vertex = vertex("x")
    x_as_edge = edge("x")
    with pytest.raises(FormulaError):
        validate(Exists(x_as_vertex, Inc(vertex("y"), x_as_edge)))


def test_validate_inccounts_allowed_classes():
    e = edge_set("E")
    with pytest.raises(FormulaError):
        validate(Exists(e, IncCounts(e, frozenset({7}))))
    with pytest.raises(FormulaError):
        validate(Exists(e, IncCounts(e, frozenset())))


def test_iff_expansion():
    a, b = Truth(True), Truth(False)
    f = iff(a, b)
    validate(f)


def test_str_rendering_smoke():
    x, y = vertex("x"), vertex("y")
    s = vertex_set("S")
    text = str(exists([x], forall(y, and_(Adj(x, y), Not(In(y, s))))))
    assert "∃" in text and "∀" in text and "adj" in text
