"""Tests for the instrumentation layer: tracer, events, exporters, CLI."""

import io
import json

import pytest

from repro.congest import Simulation, run_protocol
from repro.errors import ProtocolError
from repro.graph import generators as gen
from repro.obs import (
    NULL_SPAN,
    DeliverEvent,
    PhaseEnter,
    PhaseExit,
    RoundStart,
    SendEvent,
    Tracer,
    chrome_trace_dict,
    current_tracer,
    event_from_dict,
    phase_table_rows,
    read_events,
    render_phase_table,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import profiled


def ping_program(ctx):
    with ctx.phase("ping"):
        ctx.send_all(("ping", ctx.node))
        inbox = yield
    with ctx.phase("pong"):
        ctx.send_all(("pong", len(inbox)))
        inbox = yield
    return len(inbox)


# ----------------------------------------------------------------------
# Phase spans
# ----------------------------------------------------------------------

def test_phase_nesting_builds_hierarchical_paths():
    tracer = Tracer()
    with tracer.phase("outer"):
        with tracer.phase("inner"):
            with use_tracer(tracer):
                run_protocol(gen.path(3), ping_program)
    paths = [path for path, _ in tracer.phase_rows()]
    assert "outer" in paths
    assert "outer/inner" in paths
    assert "outer/inner/ping" in paths
    assert "outer/inner/pong" in paths


def test_lockstep_spans_refcount_to_one_enter_exit():
    tracer = Tracer()
    with use_tracer(tracer):
        run_protocol(gen.path(3), ping_program)
    # All 3 nodes enter "ping" together, but the span opens/closes once.
    enters = [e for e in tracer.events
              if isinstance(e, PhaseEnter) and e.phase == "ping"]
    exits = [e for e in tracer.events
             if isinstance(e, PhaseExit) and e.phase == "ping"]
    assert len(enters) == 1 and len(exits) == 1
    assert tracer.phase_stats["ping"].entries == 1


def test_rounds_attributed_to_sending_phase():
    tracer = Tracer()
    with use_tracer(tracer):
        run_protocol(gen.path(3), ping_program)
    stats = dict(tracer.phase_rows())
    # 4 directed edges in P3; each phase sends once per node over them.
    assert stats["ping"].messages == 4
    assert stats["pong"].messages == 4
    assert stats["ping"].rounds >= 1
    assert stats["pong"].rounds >= 1
    assert stats["ping"].bits > 0 and stats["pong"].bits > 0
    assert sum(s.rounds for s in stats.values()) == tracer.total_rounds()


def test_event_ordering_round_start_precedes_its_sends():
    tracer = Tracer()
    with use_tracer(tracer):
        run_protocol(gen.path(3), ping_program)
    started = 0
    last_round = 0
    for event in tracer.events:
        if isinstance(event, RoundStart):
            assert event.round == last_round + 1
            last_round = event.round
            started = event.round
        elif isinstance(event, (SendEvent, DeliverEvent)):
            # traffic is only recorded inside a started round
            assert event.round == started
    assert last_round == tracer.total_rounds()


def test_deliveries_follow_sends_by_one_round():
    tracer = Tracer()
    with use_tracer(tracer):
        run_protocol(gen.path(2), ping_program)
    sends = [e for e in tracer.events if isinstance(e, SendEvent)]
    delivers = [e for e in tracer.events if isinstance(e, DeliverEvent)]
    assert sends and delivers
    assert all(e.round == 1 for e in sends if e.phase == "ping")
    assert all(any(d.round == s.round + 1 and d.sender == s.sender
                   and d.receiver == s.receiver for d in delivers)
               for s in sends)


def test_per_node_and_per_edge_breakdowns():
    tracer = Tracer()
    with use_tracer(tracer):
        run_protocol(gen.path(3), ping_program)
    # Middle node talks to both neighbors, twice (ping + pong).
    assert tracer.node_stats[1].sent_messages == 4
    assert tracer.node_stats[1].received_messages == 4
    assert tracer.node_stats[0].sent_messages == 2
    assert tracer.edge_stats[(0, 1)].messages == 2
    assert tracer.edge_stats[(1, 0)].messages == 2
    assert all(stats.halt_round is not None
               for stats in tracer.node_stats.values())


# ----------------------------------------------------------------------
# Disabled / cheap modes
# ----------------------------------------------------------------------

def test_no_tracer_means_null_spans():
    assert current_tracer() is None
    seen = []

    def program(ctx):
        seen.append(ctx.phase("anything"))
        return None
        yield  # pragma: no cover

    run_protocol(gen.path(2), program)
    assert all(span is NULL_SPAN for span in seen)
    with profiled("not.recorded"):
        pass  # no tracer installed: must be a silent no-op


def test_events_false_keeps_aggregates_drops_log():
    tracer = Tracer(events=False)
    with use_tracer(tracer):
        run_protocol(gen.path(3), ping_program)
    assert tracer.events == []
    assert not tracer.truncated
    assert tracer.phase_stats["ping"].messages == 4


def test_event_cap_sets_truncated_flag():
    tracer = Tracer(max_events=5)
    with use_tracer(tracer):
        run_protocol(gen.path(3), ping_program)
    assert len(tracer.events) == 5
    assert tracer.truncated
    assert "truncated=True" in tracer.summary()


def test_use_tracer_restores_previous():
    outer, inner = Tracer(), Tracer()
    with use_tracer(outer):
        with use_tracer(inner):
            assert current_tracer() is inner
        assert current_tracer() is outer
    assert current_tracer() is None


def test_profiled_accumulates_wall_clock():
    tracer = Tracer()
    with use_tracer(tracer):
        for _ in range(3):
            with profiled("section"):
                pass
    stat = tracer.timings["section"]
    assert stat.calls == 3
    assert stat.seconds >= 0.0
    assert stat.max_seconds <= stat.seconds + 1e-9


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def traced_run():
    tracer = Tracer()
    with use_tracer(tracer):
        run_protocol(gen.cycle(4), ping_program)
    return tracer


def test_jsonl_round_trip():
    tracer = traced_run()
    buf = io.StringIO()
    written = write_jsonl(tracer, buf)
    assert written == len(tracer.events)
    assert read_events(buf.getvalue()) == tracer.events


def test_jsonl_header_and_line_validity():
    tracer = traced_run()
    buf = io.StringIO()
    write_jsonl(tracer, buf)
    lines = buf.getvalue().splitlines()
    header = json.loads(lines[0])
    assert header["kind"] == "trace-header"
    assert header["rounds"] == tracer.total_rounds()
    assert header["events"] == len(tracer.events)
    for line in lines[1:]:
        event = event_from_dict(json.loads(line))
        assert event.round >= 0


def test_event_dict_round_trip_each_kind():
    tracer = traced_run()
    kinds = {type(e) for e in tracer.events}
    assert {RoundStart, SendEvent, DeliverEvent, PhaseEnter, PhaseExit} <= kinds
    for event in tracer.events:
        assert event_from_dict(event.to_dict()) == event


def test_phase_table_render():
    tracer = traced_run()
    rows = phase_table_rows(tracer)
    assert [row[0] for row in rows] == ["ping", "pong", "unphased"] or \
        [row[0] for row in rows][:2] == ["ping", "pong"]
    text = render_phase_table(tracer)
    assert "ping" in text and "messages" in text


def test_chrome_trace_structure():
    tracer = traced_run()
    payload = chrome_trace_dict(tracer)
    events = payload["traceEvents"]
    begins = [e for e in events if e["ph"] == "B"]
    ends = [e for e in events if e["ph"] == "E"]
    assert len(begins) == len(ends) > 0
    buf = io.StringIO()
    write_chrome_trace(tracer, buf)
    assert json.loads(buf.getvalue()) == payload


def _traced_faulty_run():
    from repro.faults import CrashFault, FaultPlan

    plan = FaultPlan(seed=1, drop_rate=0.4, delay_rate=0.3,
                     crashes=(CrashFault(node=2, at_round=2,
                                         restart_round=4),))
    tracer = Tracer()
    run_protocol(gen.cycle(4), chatty_program, tracer=tracer, faults=plan,
                 seed=0)
    tracer.finish()
    return tracer


def chatty_program(ctx):
    for _ in range(5):
        ctx.send_all(("hello", ctx.node))
        yield
    return ctx.node


def test_chrome_trace_fault_events_land_on_node_tracks():
    tracer = _traced_faulty_run()
    assert tracer.fault_counts, "the plan must actually inject faults"
    payload = chrome_trace_dict(tracer)
    faults = [e for e in payload["traceEvents"]
              if e.get("cat") == "fault"]
    assert faults, "fault events must appear in the chrome trace"
    # Crash/restart instants sit on the crashed node's own track, message
    # faults on the sender's — never all lumped onto tid 0.
    send_tids = {
        e["args"].get("node", e["args"].get("sender")): e["tid"]
        for e in faults
        if "node" in e["args"] or "sender" in e["args"]
    }
    assert send_tids, "faults must carry node/sender attribution"
    assert all(tid != 0 for tid in send_tids.values())
    crashes = [e for e in faults if e["name"] == "fault-crash"]
    restarts = [e for e in faults if e["name"] == "fault-restart"]
    assert crashes and restarts
    assert crashes[0]["tid"] == restarts[0]["tid"] != 0
    # A node's fault track is the same track its sends use.
    sends = [e for e in payload["traceEvents"]
             if e.get("cat") == "message"]
    tid_by_sender = {e["name"].split()[1].split("->")[0]: e["tid"]
                     for e in sends}
    for event in faults:
        sender = event["args"].get("sender")
        if sender is not None and str(sender) in tid_by_sender:
            assert event["tid"] == tid_by_sender[str(sender)]


def test_fault_events_round_trip_through_jsonl():
    tracer = _traced_faulty_run()
    buf = io.StringIO()
    write_jsonl(tracer, buf)
    events = read_events(buf.getvalue())
    assert events == list(tracer.events)
    kinds = {type(e).__name__ for e in events}
    assert "NodeCrashed" in kinds and "NodeRestarted" in kinds


# ----------------------------------------------------------------------
# Satellite fixes in the runtime
# ----------------------------------------------------------------------

def test_unanimous_compares_by_equality_not_repr():
    # Dict outputs built in different insertion orders are equal but have
    # different reprs; unanimous() must use ==.
    def program(ctx):
        if ctx.node == 0:
            return {"a": 1, "b": 2}
        return {"b": 2, "a": 1}
        yield  # pragma: no cover

    assert run_protocol(gen.path(2), program).unanimous() == {"a": 1, "b": 2}

    def program2(ctx):
        return {"a": ctx.node}
        yield  # pragma: no cover

    with pytest.raises(ProtocolError):
        run_protocol(gen.path(2), program2).unanimous()


def test_trace_truncation_is_surfaced():
    def program(ctx):
        for _ in range(5):
            ctx.send_all(("x",))
            yield
        return None

    sim = Simulation(gen.path(2), program, trace=True, trace_limit=3)
    result = sim.run()
    assert len(sim.trace) == 3  # legacy behavior preserved
    assert result.metrics.trace_truncated
    assert "trace_truncated=True" in result.metrics.summary()

    sim2 = Simulation(gen.path(2), program, trace=True)
    assert not sim2.run().metrics.trace_truncated


def test_per_round_bits_and_peaks():
    def program(ctx):
        for _ in range(3):
            if ctx.round_number == 2:
                ctx.send_all(("payload", 12345678))
            else:
                ctx.send_all(("x",))
            yield
        return None

    result = run_protocol(gen.path(2), program)
    metrics = result.metrics
    assert len(metrics.per_round_bits) == len(metrics.per_round_messages)
    assert sum(metrics.per_round_bits) == metrics.total_bits
    peak_round, peak_bits = metrics.peak_round_bits()
    assert peak_round == 2 and peak_bits == metrics.per_round_bits[1]
    msg_round, msg_count = metrics.peak_round_messages()
    assert metrics.per_round_messages[msg_round - 1] == msg_count
    summary = metrics.summary()
    assert "peak_round_bits=" in summary and "peak_round=" in summary


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

def test_cli_trace_check(tmp_path, capsys):
    from repro.cli import main

    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.chrome.json"
    code = main([
        "trace", "--jsonl", str(jsonl), "--chrome", str(chrome),
        "check", "--formula", "triangle-free",
        "--graph", "bounded:12:3:0.4:5", "--congest",
    ])
    assert code in (0, 1)
    out = capsys.readouterr().out
    assert "per-phase breakdown" in out
    assert "elimination/" in out
    lines = jsonl.read_text().splitlines()
    assert json.loads(lines[0])["kind"] == "trace-header"
    assert read_events("\n".join(lines))
    assert json.loads(chrome.read_text())["traceEvents"]


def test_cli_repro_trace_env(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    target = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(target))
    code = main(["check", "--catalog", "triangle-free",
                 "--graph", "cycle:6", "--congest", "--d", "4"])
    assert code == 0
    err = capsys.readouterr().err
    assert "per-phase breakdown" in err
    assert target.exists()
