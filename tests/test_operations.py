"""Graph operations + cross-validation identities."""

import pytest

from repro.errors import GraphError
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.graph.operations import (
    cartesian_product,
    complement,
    contract_edge,
    has_minor,
    line_graph,
    subdivision,
)


def test_complement_basic():
    g = complement(gen.path(3))
    assert g.edges() == [(0, 2)]
    k = complement(gen.clique(4))
    assert k.num_edges() == 0
    assert complement(complement(gen.cycle(5))) == gen.cycle(5)


def test_line_graph_shapes():
    # L(P4) = P3; L(C5) = C5; L(K_{1,3}) = K3.
    lp = line_graph(gen.path(4))
    assert lp.num_vertices() == 3 and lp.num_edges() == 2
    lc = line_graph(gen.cycle(5))
    assert lc.num_vertices() == 5 and lc.num_edges() == 5
    assert all(lc.degree(v) == 2 for v in lc)
    lstar = line_graph(gen.star(3))
    assert lstar.num_edges() == 3  # triangle


def test_chromatic_index_equals_line_graph_chromatic_number():
    # The classic identity χ'(G) = χ(L(G)) — ties the edge-coloring
    # machinery to the vertex-coloring oracle.
    for g in [gen.path(4), gen.cycle(5), gen.star(3), gen.paw(), gen.clique(4)]:
        lg = line_graph(g)
        chi_line = props.chromatic_number(lg)
        assert props.chromatic_index_at_most(g, chi_line)
        assert not props.chromatic_index_at_most(g, chi_line - 1)


def test_edge_k_colorable_formula_agrees_with_line_graph():
    from repro.algebra import check, compile_formula
    from repro.mso import formulas
    from repro.treedepth import optimal_elimination_forest

    for g in [gen.path(4), gen.star(3), gen.cycle(4)]:
        lg = line_graph(g)
        for k in (1, 2, 3):
            formula = formulas.edge_k_colorable(k)
            got = check(formula, g, optimal_elimination_forest(g))
            assert got == props.is_k_colorable(lg, k), (g, k)


def test_subdivision():
    g = subdivision(gen.cycle(3))
    assert g.num_vertices() == 6
    assert g.num_edges() == 6
    assert props.is_k_colorable(g, 2)  # subdivisions are bipartite


def test_cartesian_product_is_grid():
    g = cartesian_product(gen.path(3), gen.path(4))
    grid = gen.grid(3, 4)
    assert g.num_vertices() == grid.num_vertices()
    assert g.num_edges() == grid.num_edges()
    assert g.is_connected()


def test_contract_edge():
    g = contract_edge(gen.path(3), 0, 1)
    assert sorted(g.vertices()) == [0, 2]
    assert g.has_edge(0, 2)
    with pytest.raises(GraphError):
        contract_edge(gen.path(3), 0, 2)


def test_contract_merges_parallel_edges():
    g = gen.cycle(3)
    contracted = contract_edge(g, 0, 1)
    assert contracted.num_vertices() == 2
    assert contracted.num_edges() == 1


def test_has_minor():
    # C4 has K3 as a minor (contract one edge) but not as a subgraph.
    assert not props.has_subgraph(gen.cycle(4), gen.triangle())
    assert has_minor(gen.cycle(4), gen.triangle())
    # Trees have no cycle minors.
    assert not has_minor(gen.path(5), gen.triangle())
    # K4 is a minor of itself.
    assert has_minor(gen.clique(4), gen.clique(4))
    # Too-big patterns are rejected fast.
    assert not has_minor(gen.path(3), gen.clique(4))
