"""Tests for the shard-parallel sweep runner (:mod:`repro.congest.parallel`).

Determinism is the contract: the same grid and base seed must produce the
same per-shard seeds and the same results whether the sweep runs serially
or across multiprocessing workers.
"""

import pytest

from repro.congest.parallel import (
    Shard,
    ShardResult,
    merge_metrics,
    run_sweep,
    shard_seed,
)
from repro.errors import CongestError


def echo_worker(params):
    """Module-level (picklable) worker: echo the params it received."""
    return dict(params)


def metrics_worker(params):
    return {
        "n": params["n"],
        "metrics": {
            "rounds": params["n"],
            "total_messages": 10 * params["n"],
            "max_message_bits": 32 + params["shard"],
        },
    }


def failing_worker(params):
    if params["n"] == 2:
        raise ValueError("boom")
    return params["n"]


def test_shard_seed_is_deterministic_and_spread():
    seeds = [shard_seed(0, i) for i in range(8)]
    assert seeds == [shard_seed(0, i) for i in range(8)]
    assert len(set(seeds)) == 8
    # Shifted base seeds must not collide shard-for-shard.
    shifted = [shard_seed(1, i) for i in range(8)]
    assert all(a != b for a, b in zip(seeds[1:], shifted))


def test_run_sweep_injects_seeds_and_preserves_grid_order():
    grid = [{"n": n} for n in (4, 6, 8)]
    results = run_sweep(echo_worker, grid, seed=5)
    assert [r.shard.index for r in results] == [0, 1, 2]
    assert [r.value["n"] for r in results] == [4, 6, 8]
    for i, r in enumerate(results):
        assert r.ok
        assert r.value["shard"] == i
        assert r.value["seed"] == shard_seed(5, i)
    # A point that pins its own seed keeps it.
    pinned = run_sweep(echo_worker, [{"n": 4, "seed": 99}], seed=5)
    assert pinned[0].value["seed"] == 99


def test_serial_and_parallel_sweeps_agree():
    grid = [{"n": n} for n in range(3, 9)]
    serial = run_sweep(echo_worker, grid, seed=11, processes=0)
    try:
        fanned = run_sweep(echo_worker, grid, seed=11, processes=2)
    except (ImportError, OSError) as exc:  # no multiprocessing here
        pytest.skip(f"multiprocessing unavailable: {exc}")
    assert [r.value for r in serial] == [r.value for r in fanned]


def test_strict_sweep_raises_naming_the_shard():
    grid = [{"n": n} for n in (1, 2, 3)]
    with pytest.raises(CongestError, match="shard 1"):
        run_sweep(failing_worker, grid, seed=0)
    relaxed = run_sweep(failing_worker, grid, seed=0, strict=False)
    assert [r.ok for r in relaxed] == [True, False, True]
    assert "ValueError: boom" in relaxed[1].error


def test_shard_error_repr_names_its_shard():
    # The error string alone (without the ShardResult around it) must
    # identify the failing grid point, e.g. in merged sweep logs.
    relaxed = run_sweep(failing_worker, [{"n": n} for n in (1, 2, 3)],
                        seed=0, strict=False)
    assert relaxed[1].error.startswith("shard 1: ")


def test_worker_exception_surfaces_across_processes():
    # A worker crash inside a multiprocessing pool must come back as a
    # ShardResult error (relaxed) or a CongestError (strict), never as a
    # half-dead pool or a lost shard.
    grid = [{"n": n} for n in (1, 2, 3, 4)]
    try:
        relaxed = run_sweep(failing_worker, grid, seed=0, processes=2,
                            strict=False)
    except (ImportError, OSError) as exc:
        pytest.skip(f"multiprocessing unavailable: {exc}")
    assert [r.ok for r in relaxed] == [True, False, True, True]
    assert "shard 1: ValueError: boom" in relaxed[1].error
    with pytest.raises(CongestError, match="shard 1"):
        run_sweep(failing_worker, grid, seed=0, processes=2)


def test_more_processes_than_grid_points():
    # processes > len(grid) must not deadlock or duplicate shards.
    grid = [{"n": n} for n in (5, 7)]
    try:
        fanned = run_sweep(echo_worker, grid, seed=3, processes=6)
    except (ImportError, OSError) as exc:
        pytest.skip(f"multiprocessing unavailable: {exc}")
    assert [r.shard.index for r in fanned] == [0, 1]
    assert [r.value["n"] for r in fanned] == [5, 7]
    serial = run_sweep(echo_worker, grid, seed=3, processes=0)
    assert [r.value for r in fanned] == [r.value for r in serial]


def test_merge_metrics_sums_counters_and_maxes_bits():
    results = run_sweep(metrics_worker, [{"n": n} for n in (2, 3, 4)], seed=0)
    merged = merge_metrics(results)
    assert merged["rounds"] == 2 + 3 + 4
    assert merged["total_messages"] == 10 * (2 + 3 + 4)
    assert merged["max_message_bits"] == 32 + 2
    # Shards without a metrics dict are skipped, not fatal.
    shard = Shard(index=0, seed=0)
    assert merge_metrics([ShardResult(shard=shard, value={"n": 1})]) == {}
    assert merge_metrics([ShardResult(shard=shard, value=None)]) == {}
