"""Unit tests for the ground-truth oracles in repro.graph.properties."""

from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props


def test_independent_set():
    g = gen.cycle(5)
    assert props.is_independent_set(g, [0, 2])
    assert not props.is_independent_set(g, [0, 1])
    assert props.is_independent_set(g, [])


def test_clique_check():
    g = gen.clique(4)
    assert props.is_clique(g, [0, 1, 2])
    assert not props.is_clique(gen.path(3), [0, 1, 2])


def test_vertex_cover():
    g = gen.path(4)
    assert props.is_vertex_cover(g, [1, 2])
    assert not props.is_vertex_cover(g, [1])


def test_dominating_set():
    g = gen.star(5)
    assert props.is_dominating_set(g, [0])
    assert not props.is_dominating_set(g, [1])
    assert props.is_dominating_set(g, range(6))


def test_feedback_vertex_set():
    g = gen.cycle(4)
    assert props.is_feedback_vertex_set(g, [0])
    assert not props.is_feedback_vertex_set(g, [])


def test_matching_predicates():
    g = gen.cycle(4)
    assert props.is_matching(g, [(0, 1), (2, 3)])
    assert not props.is_matching(g, [(0, 1), (1, 2)])
    assert props.is_perfect_matching(g, [(0, 1), (2, 3)])
    assert not props.is_perfect_matching(g, [(0, 1)])


def test_spanning_tree_predicate():
    g = gen.cycle(4)
    assert props.is_spanning_tree(g, [(0, 1), (1, 2), (2, 3)])
    assert not props.is_spanning_tree(g, [(0, 1), (1, 2), (2, 3), (0, 3)])
    assert not props.is_spanning_tree(g, [(0, 1), (2, 3)])


def test_acyclic():
    assert props.is_acyclic(gen.path(5))
    assert props.is_acyclic(Graph(range(3)))
    assert not props.is_acyclic(gen.cycle(3))


def test_regular_and_max_degree():
    assert props.is_regular(gen.cycle(5))
    assert not props.is_regular(gen.path(3))
    assert props.max_degree(gen.star(4)) == 4
    assert props.max_degree(Graph()) == 0


def test_colorability():
    assert props.is_k_colorable(gen.path(5), 2)
    assert not props.is_k_colorable(gen.cycle(5), 2)
    assert props.is_k_colorable(gen.cycle(5), 3)
    assert not props.is_k_colorable(gen.clique(4), 3)
    assert props.chromatic_number(gen.cycle(5)) == 3
    assert props.chromatic_number(gen.clique(4)) == 4
    assert props.chromatic_number(Graph()) == 0


def test_proper_coloring_check():
    g = gen.path(3)
    assert props.is_proper_coloring(g, {0: 0, 1: 1, 2: 0})
    assert not props.is_proper_coloring(g, {0: 0, 1: 0, 2: 1})


def test_max_independent_set():
    val, s = props.max_independent_set(gen.cycle(5))
    assert val == 2
    assert props.is_independent_set(gen.cycle(5), s)
    val, _ = props.max_independent_set(gen.star(4))
    assert val == 4


def test_weighted_max_independent_set():
    g = gen.path(3)
    g.set_vertex_weight(1, 10)
    val, s = props.max_independent_set(g, weight=g.vertex_weight)
    assert val == 10
    assert s == frozenset({1})


def test_min_vertex_cover():
    val, s = props.min_vertex_cover(gen.path(4))
    assert val == 2
    assert props.is_vertex_cover(gen.path(4), s)


def test_min_dominating_set():
    val, _ = props.min_dominating_set(gen.path(6))
    assert val == 2
    val, _ = props.min_dominating_set(gen.star(5))
    assert val == 1


def test_min_feedback_vertex_set():
    val, _ = props.min_feedback_vertex_set(gen.cycle(5))
    assert val == 1
    val, _ = props.min_feedback_vertex_set(gen.path(5))
    assert val == 0


def test_max_matching_size():
    assert props.max_matching_size(gen.path(4)) == 2
    assert props.max_matching_size(gen.cycle(5)) == 2
    assert props.max_matching_size(gen.star(4)) == 1


def test_min_spanning_tree_weight():
    g = gen.cycle(3)
    g.set_edge_weight(0, 1, 5)
    g.set_edge_weight(1, 2, 1)
    g.set_edge_weight(0, 2, 2)
    assert props.min_spanning_tree_weight(g) == 3
    assert props.min_spanning_tree_weight(Graph([0, 1])) is None


def test_has_subgraph():
    assert props.has_subgraph(gen.clique(4), gen.triangle())
    assert not props.has_subgraph(gen.path(5), gen.triangle())
    assert props.has_subgraph(gen.cycle(4), gen.path(3))
    # induced: C4 contains P3 induced, but K4 does not.
    assert props.has_subgraph(gen.cycle(4), gen.path(3), induced=True)
    assert not props.has_subgraph(gen.clique(4), gen.path(3), induced=True)


def test_count_subgraph_copies():
    assert props.count_subgraph_copies(gen.clique(4), gen.triangle()) == 4
    assert props.count_subgraph_copies(gen.cycle(5), gen.path(3)) == 5
    assert props.count_subgraph_copies(gen.clique(4), gen.cycle(4)) == 3


def test_count_triangles():
    assert props.count_triangles(gen.clique(4)) == 4
    assert props.count_triangles(gen.clique(5)) == 10
    assert props.count_triangles(gen.cycle(5)) == 0
    assert props.count_triangles(gen.paw()) == 1


def test_hamiltonian_cycle():
    assert props.has_hamiltonian_cycle(gen.cycle(5))
    assert props.has_hamiltonian_cycle(gen.clique(4))
    assert not props.has_hamiltonian_cycle(gen.path(4))
    assert not props.has_hamiltonian_cycle(gen.star(3))


def test_hamiltonian_path():
    assert props.has_hamiltonian_path(gen.path(5))
    assert props.has_hamiltonian_path(gen.cycle(4))
    assert not props.has_hamiltonian_path(gen.star(3))
