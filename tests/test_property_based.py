"""Property-based tests (hypothesis) for the core invariants.

The crown jewel is the differential test at the bottom: *random* MSO
formulas on *random* graphs with *random* elimination forests must agree
between the Courcelle engine and the brute-force semantics — this
exercises every automaton, the compiler, and the algebra at once.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra import check, compile_formula
from repro.congest import payload_bits
from repro.graph import Graph
from repro.graph import properties as props
from repro.mso import Sort, Var, evaluate
from repro.mso import syntax as sx
from repro.treedepth import (
    canonical_tree_decomposition,
    dfs_elimination_forest,
    forest_from_order,
    treedepth,
    treedepth_lower_bound,
)

# ----------------------------------------------------------------------
# Graph strategies
# ----------------------------------------------------------------------

@st.composite
def graphs(draw, min_vertices=1, max_vertices=6, connected=False):
    n = draw(st.integers(min_vertices, max_vertices))
    g = Graph(range(n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for u, v in pairs:
        if draw(st.booleans()):
            g.add_edge(u, v)
    if connected and not g.is_connected():
        components = g.connected_components()
        for a, b in zip(components, components[1:]):
            g.add_edge(a[0], b[0])
    return g


@st.composite
def graphs_with_order(draw):
    g = draw(graphs(max_vertices=6))
    order = draw(st.permutations(g.vertices()))
    return g, list(order)


# ----------------------------------------------------------------------
# Graph / treedepth invariants
# ----------------------------------------------------------------------

@given(graphs())
@settings(max_examples=60)
def test_components_partition_vertices(g):
    components = g.connected_components()
    seen = [v for comp in components for v in comp]
    assert sorted(seen) == g.vertices()
    assert len(set(seen)) == len(seen)


@given(graphs(), st.data())
@settings(max_examples=60)
def test_induced_subgraph_is_subgraph(g, data):
    keep = data.draw(st.sets(st.sampled_from(g.vertices())))
    sub = g.induced_subgraph(keep)
    assert set(sub.vertices()) == set(keep)
    for u, v in sub.edges():
        assert g.has_edge(u, v)


@given(graphs_with_order())
@settings(max_examples=60)
def test_any_order_yields_valid_elimination_forest(gw):
    g, order = gw
    forest = forest_from_order(g, order)
    forest.validate_for(g)
    assert forest.depth() >= treedepth(g)


@given(graphs(connected=True))
@settings(max_examples=40)
def test_treedepth_sandwich(g):
    td = treedepth(g)
    assert treedepth_lower_bound(g) <= td
    dfs = dfs_elimination_forest(g)
    dfs.validate_for(g)
    assert td <= dfs.depth() <= 2 ** td  # Lemma 2.5


@given(graphs_with_order())
@settings(max_examples=40)
def test_canonical_decomposition_always_valid(gw):
    g, order = gw
    forest = forest_from_order(g, order)
    decomposition = canonical_tree_decomposition(forest)
    decomposition.validate_for(g)
    assert decomposition.width() == forest.depth() - 1


# ----------------------------------------------------------------------
# CONGEST payload accounting
# ----------------------------------------------------------------------

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2 ** 20), 2 ** 20),
        st.text(alphabet="abc", max_size=4),
    ),
    lambda inner: st.one_of(
        st.tuples(inner, inner),
        st.frozensets(st.integers(0, 8), max_size=4),
    ),
    max_leaves=6,
)


@given(payloads)
@settings(max_examples=80)
def test_payload_bits_positive_and_deterministic(p):
    bits = payload_bits(p)
    assert bits > 0
    assert payload_bits(p) == bits


# ----------------------------------------------------------------------
# Differential: random formulas, engine vs brute force
# ----------------------------------------------------------------------

_X = Var("X", Sort.VERTEX_SET)
_Y = Var("Y", Sort.VERTEX_SET)
_E = Var("E", Sort.EDGE_SET)
_x = Var("x", Sort.VERTEX)
_y = Var("y", Sort.VERTEX)

_ATOMS = [
    sx.Adj(_X, _Y),
    sx.Adj(_X, _X),
    sx.Adj(_x, _y),
    sx.Adj(_x, _X),
    sx.Eq(_x, _y),
    sx.In(_x, _X),
    sx.NonEmpty(_X),
    sx.NonEmpty(_E),
    sx.Subset(_X, (_Y,)),
    sx.SetsIntersect(_X, _Y),
    sx.AllVerticesIn((_X, _Y)),
    sx.Inc(_x, _E),
    sx.Inc(_X, _E),
    sx.EdgeCross(_E, _X, _Y),
    sx.EdgeCross(_E, _X, None),
    sx.IncCounts(_E, frozenset({0, 1})),
    sx.IncCounts(_E, frozenset({0, 2, 3}), _X),
    sx.IncCounts(_E, frozenset({0, 3}), cap=4),
    sx.IncParity(_E, even=True),
    sx.IncParity(_E, even=False, within=_X),
    sx.AllEdgesIn((_E,)),
    sx.IsClique(_X),
    sx.IsClique(_x),
    sx.EndpointsIn(_E, _X),
    sx.Truth(True),
]


def _atoms_strategy():
    return st.sampled_from(_ATOMS)


_bodies = st.recursive(
    _atoms_strategy(),
    lambda inner: st.one_of(
        st.builds(sx.Not, inner),
        st.builds(lambda a, b: sx.And((a, b)), inner, inner),
        st.builds(lambda a, b: sx.Or((a, b)), inner, inner),
    ),
    max_leaves=4,
)


@st.composite
def closed_formulas(draw):
    body = draw(_bodies)
    # Quantify every variable the body mentions, innermost-out, with a
    # random quantifier each.
    used = sorted(sx.free_variables(body), key=lambda v: v.name)
    formula = body
    for var in used:
        kind = draw(st.sampled_from([sx.Exists, sx.Forall]))
        formula = kind(var, formula)
    return formula


@given(closed_formulas(), graphs(max_vertices=4))
@settings(max_examples=120)
def test_engine_agrees_with_semantics_on_random_formulas(formula, g):
    if g.num_vertices() == 0:
        return
    expected = evaluate(g, formula)
    forest = dfs_elimination_forest(g)
    automaton = compile_formula(formula, ())
    assert check(formula, g, forest, automaton) == expected


@given(graphs(max_vertices=5, connected=True), st.permutations(list(range(5))))
@settings(max_examples=40)
def test_engine_forest_independence(g, perm):
    # The engine's verdict must be identical on *any* valid forest.
    from repro.mso import formulas as cat

    order = [v for v in perm if v in set(g.vertices())]
    for v in g.vertices():
        if v not in order:
            order.append(v)
    forest_a = dfs_elimination_forest(g)
    forest_b = forest_from_order(g, order)
    formula = cat.acyclic()
    automaton = compile_formula(formula, ())
    assert check(formula, g, forest_a, automaton) == check(
        formula, g, forest_b, automaton
    ) == props.is_acyclic(g)
