"""Property-based differential tests of the distributed layer.

Random bounded-treedepth networks with random labels and weights: the
CONGEST pipelines must agree with the sequential engine (which is itself
property-tested against brute force).  Examples are kept small; the value
is in the random structure, not the size.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra import check, compile_formula, count as seq_count, optimize as seq_optimize
from repro.algebra import compile_with_singletons
from repro.distributed import count_pipeline, decide_pipeline, optimize_pipeline
from repro.graph import generators as gen
from repro.mso import formulas, vertex_set
from repro.treedepth import dfs_elimination_forest


@st.composite
def networks(draw):
    n = draw(st.integers(4, 12))
    depth = draw(st.integers(2, 3))
    prob = draw(st.sampled_from([0.3, 0.6, 0.9]))
    seed = draw(st.integers(0, 10 ** 6))
    return gen.random_bounded_treedepth(n, depth, prob, seed), depth


DECISION_FORMULAS = [
    formulas.acyclic(),
    formulas.h_free(gen.triangle()),
    formulas.exists_vertex_of_degree_greater(2),
    formulas.has_even_subgraph(),
]
DECISION_AUTOMATA = [compile_formula(f, ()) for f in DECISION_FORMULAS]


@given(networks(), st.integers(0, len(DECISION_FORMULAS) - 1))
@settings(max_examples=30)
def test_distributed_decision_equals_sequential(net, idx):
    g, depth = net
    formula = DECISION_FORMULAS[idx]
    automaton = DECISION_AUTOMATA[idx]
    sequential = check(formula, g, dfs_elimination_forest(g), automaton)
    outcome = decide_pipeline(automaton, g, d=depth)
    assert not outcome.treedepth_exceeded
    assert outcome.accepted == sequential


_S = vertex_set("S")
_OPT_FORMULA = formulas.independent_set(_S)
_OPT_AUTOMATON = compile_formula(_OPT_FORMULA, (_S,))


@given(networks(), st.lists(st.integers(1, 9), min_size=12, max_size=12))
@settings(max_examples=25)
def test_distributed_optimization_equals_sequential(net, weights):
    g, depth = net
    for i, v in enumerate(g.vertices()):
        g.set_vertex_weight(v, weights[i % len(weights)])
    sequential = seq_optimize(
        _OPT_FORMULA, g, dfs_elimination_forest(g), _S, maximize=True,
        automaton=_OPT_AUTOMATON,
    )
    outcome = optimize_pipeline(_OPT_AUTOMATON, g, d=depth, maximize=True)
    assert outcome.feasible and sequential is not None
    assert outcome.value == sequential.value
    # Witnesses may differ between runs; both must achieve the optimum.
    assert sum(g.vertex_weight(v) for v in outcome.witness) == outcome.value


_COUNT_FORMULA, _COUNT_VARS = formulas.triangle_assignment()
_COUNT_AUTOMATON = compile_with_singletons(_COUNT_FORMULA, _COUNT_VARS)


@given(networks())
@settings(max_examples=20)
def test_distributed_counting_equals_sequential(net):
    g, depth = net
    sequential = seq_count(
        _COUNT_FORMULA, g, dfs_elimination_forest(g), _COUNT_VARS,
        automaton=_COUNT_AUTOMATON,
    )
    outcome = count_pipeline(_COUNT_AUTOMATON, g, d=depth)
    assert outcome.count == sequential
