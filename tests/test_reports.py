"""Tests for the metrics registry, RunReport artifacts, report diffing,
and the benchmark regression gate."""

import json

import pytest

from repro.algebra.cache import AutomatonCache
from repro.api import Session
from repro.cli import main as cli_main
from repro.graph import generators as gen
from repro.mso import formulas
from repro.obs.benchgate import check_bench, compare_bench
from repro.obs.registry import (
    MetricsRegistry,
    collect_run,
    note_simulation,
    registry,
    set_registry,
)
from repro.obs.reports import (
    RunReport,
    RunStore,
    build_report,
    diff_reports,
    render_html,
    render_markdown,
)


@pytest.fixture
def fresh_registry():
    """Isolate each test from the process-wide registry singleton."""
    old = registry()
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(old)


def _session(graph=None, d=4, **kwargs):
    kwargs.setdefault("cache", AutomatonCache(persist=False))
    return Session(graph if graph is not None else gen.cycle(8), d, **kwargs)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_counter_gauge_histogram_basics(fresh_registry):
    reg = fresh_registry
    c = reg.counter("repro_test_total", "help", ("kind",))
    c.inc(kind="a")
    c.inc(3, kind="a")
    c.inc(kind="b")
    g = reg.gauge("repro_test_gauge", "help")
    g.set(7)
    g.set_max(3)  # lower: must not regress the max
    h = reg.histogram("repro_test_hist", "help", buckets=(1, 10))
    for v in (0, 5, 100):
        h.observe(v)
    data = reg.to_json()
    assert data["repro_test_total"]["samples"] == [
        {"labels": {"kind": "a"}, "value": 4},
        {"labels": {"kind": "b"}, "value": 1},
    ]
    assert data["repro_test_gauge"]["samples"] == [{"labels": {}, "value": 7}]
    assert data["repro_test_hist"]["buckets"] == [1, 10]
    hist = data["repro_test_hist"]["samples"][0]
    assert hist["count"] == 3 and hist["sum"] == 105
    assert hist["counts"] == [1, 2]  # <=1: one, <=10: two, +Inf via count


def test_get_or_create_returns_same_metric(fresh_registry):
    reg = fresh_registry
    assert reg.counter("repro_x_total", "h") is reg.counter("repro_x_total", "h")


def test_prometheus_rendering_is_deterministic(fresh_registry):
    reg = fresh_registry
    reg.counter("repro_b_total", "second", ("kind",)).inc(kind="z")
    reg.counter("repro_b_total", "second", ("kind",)).inc(kind="a")
    reg.counter("repro_a_total", "first").inc(2)
    reg.histogram("repro_h", "hist", buckets=(1,)).observe(0.5)
    text = reg.render_prometheus()
    assert text == reg.render_prometheus()
    # Families sorted by name, label sets sorted within a family.
    assert text.index("repro_a_total") < text.index("repro_b_total")
    assert text.index('kind="a"') < text.index('kind="z"')
    assert "# TYPE repro_a_total counter" in text
    assert 'repro_h_bucket{le="+Inf"} 1' in text
    assert "repro_h_count 1" in text


def test_simulations_feed_registry_and_collectors(fresh_registry):
    with collect_run() as collector:
        _session().decide(formulas.triangle_free())
    assert collector.simulations >= 2  # elimination + checking
    assert collector.rounds > 0
    assert collector.messages > 0
    assert len(collector.per_round_messages) == collector.rounds
    data = fresh_registry.to_json()
    assert data["repro_rounds_total"]["samples"][0]["value"] == collector.rounds
    engines = {s["labels"]["engine"] for s in
               data["repro_simulations_total"]["samples"]}
    assert engines == {"batched"}


def test_fault_injection_counts_into_registry(fresh_registry):
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=3, drop_rate=0.5)
    session = _session(faults=plan, retry=None)
    with collect_run() as collector:
        session.decide(formulas.triangle_free())
    assert collector.faults.get("fault-drop", 0) > 0
    samples = fresh_registry.to_json()["repro_faults_injected_total"]["samples"]
    by_kind = {s["labels"]["kind"]: s["value"] for s in samples}
    assert by_kind["fault-drop"] == collector.faults["fault-drop"]


def test_sweeps_count_into_registry(fresh_registry):
    from repro.congest.parallel import run_sweep

    run_sweep(_noop_worker, [{"x": 1}, {"x": 2}, {"x": 3}])
    data = fresh_registry.to_json()
    assert data["repro_sweeps_total"]["samples"][0]["value"] == 1
    assert data["repro_sweep_shards_total"]["samples"][0]["value"] == 3


def _noop_worker(params):
    return {"metrics": {"rounds": 1}}


# ----------------------------------------------------------------------
# RunReports and the run store
# ----------------------------------------------------------------------

def test_result_exposes_cache_deltas_and_report(fresh_registry):
    session = _session()
    phi = formulas.triangle_free()
    first = session.decide(phi)
    second = session.decide(phi)
    assert (first.cache_hits, first.cache_misses) == (0, 1)
    assert (second.cache_hits, second.cache_misses) == (1, 0)
    report = first.report
    assert isinstance(report, RunReport)
    assert report.workload == "decide"
    assert report.metrics["rounds"] == first.rounds
    assert report.metrics["messages"] == first.messages
    assert report.phase_rounds == dict(first.phase_rounds)
    assert report.cache == {"hits": 0, "misses": 1, "disk_loads": 0}
    assert report.replay["engine"] == "batched"
    assert len(report.run_id) == 64
    # Wall-clock and timestamps never leak into the content address.
    assert "wall_seconds" not in report.deterministic_core()
    assert report.to_dict()["wall_seconds"] == report.wall_seconds


def test_identical_executions_share_a_content_address(fresh_registry):
    phi = formulas.triangle_free()
    a = _session().decide(phi)
    b = _session().decide(phi)
    assert a.report.run_id == b.report.run_id
    assert a.report.wall_seconds != 0.0


def test_record_persists_to_run_store(fresh_registry, tmp_path):
    phi = formulas.triangle_free()
    session = _session(record=str(tmp_path))
    session.decide(phi)
    session.certify(phi)
    store = RunStore(tmp_path)
    stored = store.list()
    assert [r.workload for r in stored] == ["decide", "certify"]
    latest = store.load("latest")
    assert latest.workload == "certify"
    by_prefix = store.load(stored[0].run_id[:10])
    assert by_prefix.run_id == stored[0].run_id
    with pytest.raises(KeyError):
        store.load("not-a-run")


def test_run_store_env_override(fresh_registry, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path / "envruns"))
    _session(record=True).decide(formulas.triangle_free())
    assert RunStore().list()[0].workload == "decide"
    assert (tmp_path / "envruns" / "runs.jsonl").exists()


def test_run_store_skips_corrupt_lines(fresh_registry, tmp_path):
    _session(record=str(tmp_path)).decide(formulas.triangle_free())
    store = RunStore(tmp_path)
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write("not json\n{\"also\": \"no run_id\"}\n")
    assert len(store.list()) == 1


def test_renderers_cover_the_report(fresh_registry):
    from repro.mso import Sort, Var

    result = _session().optimize(
        formulas.independent_set(Var("S", Sort.VERTEX_SET))
    )
    md = render_markdown(result.report)
    assert "## Metrics" in md and "rounds" in md
    assert f"value**: {result.value}" in md
    html = render_html(result.report)
    assert html.startswith("<!DOCTYPE html>")
    assert "<table>" in html and "</html>" in html


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------

def test_diff_of_identical_runs_is_clean_and_deterministic(fresh_registry):
    phi = formulas.triangle_free()
    a = _session().decide(phi).report
    b = _session().decide(phi).report
    diff = diff_reports(a, b)
    assert diff.ok
    assert diff.render() == diff_reports(a, b).render()
    assert "no threshold breaches" in diff.render()
    # wall-clock only appears on request
    assert "wall_seconds" not in diff.render()
    assert "wall_seconds" in diff.render(wall=True)


def test_diff_flags_regressions_and_verdict_changes(fresh_registry):
    a = _session().decide(formulas.triangle_free()).report
    b = _session(gen.cycle(16), d=6).decide(formulas.triangle_free()).report
    diff = diff_reports(a, b)
    assert not diff.ok
    assert any("rounds" in breach for breach in diff.breaches)
    # Loosening the tolerance clears the gate.
    loose = diff_reports(a, b, {"rounds": 100.0})
    assert all("rounds:" not in breach for breach in loose.breaches)
    # Verdict disagreements always breach, regardless of thresholds.
    c = _session().decide(formulas.acyclic()).report  # cycle: False
    verdict_diff = diff_reports(a, c, {})
    assert any("verdict" in breach for breach in verdict_diff.breaches)


# ----------------------------------------------------------------------
# Bench gate
# ----------------------------------------------------------------------

BENCH = {
    "benchmark": "engine",
    "mode": "smoke",
    "experiments": {
        "E1": {
            "grid": [8, 12],
            "checks": [[8, True, 100], [12, True, 150]],
            "speedup": 2.0,
            "naive_seconds": 1.0,
            "batched_seconds": 0.5,
        },
    },
}


def test_compare_bench_passes_identical_results():
    result = compare_bench(json.loads(json.dumps(BENCH)), BENCH)
    assert result.ok
    assert "checks match" in result.render()


def test_compare_bench_flags_slow_and_wrong_runs():
    slow = json.loads(json.dumps(BENCH))
    slow["experiments"]["E1"]["speedup"] = 0.4
    result = compare_bench(slow, BENCH)
    assert [b.metric for b in result.breaches] == ["speedup"]

    # Above the floor: noise, not a regression, even far below baseline.
    floored = json.loads(json.dumps(BENCH))
    floored["experiments"]["E1"]["speedup"] = 1.01
    assert compare_bench(floored, BENCH).ok

    wrong = json.loads(json.dumps(BENCH))
    wrong["experiments"]["E1"]["checks"][0][1] = False
    assert [b.metric for b in compare_bench(wrong, BENCH).breaches] == ["checks"]


def test_compare_bench_skips_checks_on_grid_mismatch():
    smoke = json.loads(json.dumps(BENCH))
    smoke["experiments"]["E1"]["grid"] = [6]
    smoke["experiments"]["E1"]["checks"] = [[6, True, 80]]
    result = compare_bench(smoke, BENCH)
    assert result.ok
    assert "grid differs" in result.render()


def test_compare_bench_time_gate_is_opt_in():
    slow = json.loads(json.dumps(BENCH))
    slow["experiments"]["E1"]["batched_seconds"] = 5.0
    assert compare_bench(slow, BENCH).ok
    gated = compare_bench(slow, BENCH, time_tolerance=0.25)
    assert [b.metric for b in gated.breaches] == ["batched_seconds"]


def test_check_bench_requires_baseline_and_inputs(tmp_path):
    fresh = tmp_path / "BENCH_engine.json"
    fresh.write_text(json.dumps(BENCH))
    missing = check_bench([fresh], tmp_path / "nowhere")
    assert not missing.ok
    assert missing.breaches[0].metric == "baseline"
    assert not check_bench([], tmp_path).ok

    baselines = tmp_path / "baselines"
    baselines.mkdir()
    (baselines / "BENCH_engine_smoke.json").write_text(json.dumps(BENCH))
    assert check_bench([fresh], baselines).ok


def test_benchmark_reporting_emits_typed_json(tmp_path, monkeypatch):
    import importlib.util
    import pathlib

    spec = importlib.util.spec_from_file_location(
        "bench_reporting",
        pathlib.Path(__file__).parent.parent / "benchmarks" / "reporting.py",
    )
    reporting = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(reporting)
    monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
    reporting.record_table("E9", "demo", ("n", "rounds", "speedup"),
                           [(8, 100, 2.5), (12, 150, 3.0)])
    reporting.record_table("E9", "more", ("k",), [("x",)])
    assert (tmp_path / "e9.txt").exists()
    data = json.loads((tmp_path / "e9.json").read_text())
    assert data["experiment"] == "E9"
    assert [t["title"] for t in data["tables"]] == ["demo", "more"]
    rows = data["tables"][0]["rows"]
    assert rows == [[8, 100, 2.5], [12, 150, 3.0]]
    assert isinstance(rows[0][0], int) and isinstance(rows[0][2], float)
    reporting.reset_results()
    assert not list(tmp_path.iterdir())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_record_report_list_show_diff(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    base = ["check", "--graph", "cycle:8", "--congest", "--d", "4",
            "--catalog", "triangle-free", "--record"]
    assert cli_main(base) == 0
    assert cli_main(base) == 0
    assert cli_main(["report", "list"]) == 0
    listing = capsys.readouterr().out.strip().splitlines()
    runs = [line for line in listing if "decide" in line]
    assert len(runs) == 2
    run_id = runs[0].split()[0]

    assert cli_main(["report", "show", run_id]) == 0
    assert "## Metrics" in capsys.readouterr().out
    out_html = tmp_path / "run.html"
    assert cli_main(["report", "show", "latest", "--format", "html",
                     "--out", str(out_html)]) == 0
    assert out_html.read_text().startswith("<!DOCTYPE html>")
    capsys.readouterr()  # drop the "report ... -> PATH" confirmation

    assert cli_main(["report", "diff", run_id, "latest"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["report", "diff", run_id, "latest"]) == 0
    assert capsys.readouterr().out == first  # byte-deterministic


def test_cli_report_diff_exits_one_on_breach(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    for spec, d in (("cycle:8", "4"), ("cycle:16", "6")):
        assert cli_main(["check", "--graph", spec, "--congest", "--d", d,
                         "--catalog", "triangle-free", "--record"]) == 0
    store = RunStore(tmp_path)
    small, big = [r.run_id for r in store.list()]
    assert cli_main(["report", "diff", small, big]) == 1
    assert "threshold breaches" in capsys.readouterr().out
    assert cli_main(["report", "diff", small, big,
                     "--tolerance", "rounds=100",
                     "--tolerance", "messages=100",
                     "--tolerance", "bits=100",
                     "--tolerance", "max_message_bits=100"]) == 0


def test_cli_bench_check_pass_and_fail(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    (baselines / "BENCH_engine_smoke.json").write_text(json.dumps(BENCH))
    fresh = tmp_path / "BENCH_engine.json"
    fresh.write_text(json.dumps(BENCH))
    assert cli_main(["bench", "check", "--baselines", str(baselines)]) == 0
    assert "bench check: ok" in capsys.readouterr().out

    slow = json.loads(json.dumps(BENCH))
    slow["experiments"]["E1"]["speedup"] = 0.4
    fresh.write_text(json.dumps(slow))
    assert cli_main(["bench", "check", "--baselines", str(baselines)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_metrics_env_writes_prometheus(tmp_path, capsys, monkeypatch):
    target = tmp_path / "metrics.prom"
    monkeypatch.setenv("REPRO_METRICS", str(target))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert cli_main(["check", "--graph", "cycle:8", "--congest", "--d", "4",
                     "--catalog", "triangle-free"]) == 0
    text = target.read_text()
    assert "# TYPE repro_simulations_total counter" in text
    assert 'repro_simulations_total{engine="batched"}' in text
