"""RunConfig: the single validated configuration surface.

Covers the from_kwargs funnel (defaults, None-means-default, the
config-vs-kwargs clash), typed engine validation, the JSON replay
round-trip, and the Session/pipeline integration points.
"""

import dataclasses
import json

import pytest

from repro.algebra import compile_formula
from repro.api import Result, RunConfig, Session
from repro.distributed import count_pipeline, decide_pipeline
from repro.errors import ReproError, UnknownEngineError
from repro.faults import FaultPlan, RetryPolicy
from repro.graph import generators as gen
from repro.mso import formulas
from repro.runconfig import REPLAY_FIELDS


def test_defaults():
    cfg = RunConfig()
    assert cfg.engine == "batched"
    assert cfg.inbox_order == "arrival"
    assert cfg.seed is None
    assert cfg.faults is None


def test_frozen():
    cfg = RunConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.engine = "naive"


def test_unknown_engine_typed():
    with pytest.raises(UnknownEngineError) as exc:
        RunConfig(engine="warp")
    message = str(exc.value)
    assert "warp" in message
    # The error must name every valid engine.
    for engine in ("naive", "batched", "vectorized"):
        assert engine in message


def test_unknown_inbox_order():
    with pytest.raises(ReproError):
        RunConfig(inbox_order="chaotic")


def test_from_kwargs_none_means_default():
    cfg = RunConfig.from_kwargs(engine=None, seed=None, inbox_order=None)
    assert cfg == RunConfig()


def test_from_kwargs_defaults_mapping():
    cfg = RunConfig.from_kwargs(defaults={"engine": "naive"}, engine=None)
    assert cfg.engine == "naive"
    # An explicit kwarg beats the caller default.
    cfg = RunConfig.from_kwargs(
        defaults={"engine": "naive"}, engine="vectorized"
    )
    assert cfg.engine == "vectorized"


def test_from_kwargs_config_passthrough():
    cfg = RunConfig(seed=9, engine="vectorized")
    assert RunConfig.from_kwargs(cfg) is cfg


def test_from_kwargs_clash_rejected():
    cfg = RunConfig(seed=9)
    with pytest.raises(ReproError, match="not both"):
        RunConfig.from_kwargs(cfg, engine="naive")
    # None-valued kwargs do not clash: they mean "unspecified".
    assert RunConfig.from_kwargs(cfg, engine=None) is cfg


def test_from_kwargs_unknown_key():
    with pytest.raises(ReproError, match="unknown run configuration"):
        RunConfig.from_kwargs(warp_factor=9)


def test_with_overrides_revalidates():
    cfg = RunConfig()
    assert cfg.with_overrides(engine="vectorized").engine == "vectorized"
    with pytest.raises(UnknownEngineError):
        cfg.with_overrides(engine="warp")


def test_json_round_trip():
    cfg = RunConfig(
        seed=7, inbox_order="sorted", engine="vectorized",
        faults=FaultPlan(seed=3, drop_rate=0.1),
        retry=RetryPolicy(attempts=2), budget=64,
    )
    encoded = json.loads(json.dumps(cfg.to_json()))
    decoded = RunConfig.from_json(encoded)
    assert decoded.replay_args() == cfg.replay_args()


def test_from_json_rejects_unknown_keys():
    with pytest.raises(ReproError, match="unknown replay"):
        RunConfig.from_json({"seed": 1, "warp": True})


def test_from_json_rejects_nonreplay_fields():
    # trace/cache/codec hold live objects and must never round-trip.
    assert set(RunConfig(seed=1).to_json()) == set(REPLAY_FIELDS)
    with pytest.raises(ReproError):
        RunConfig.from_json({"trace": True})


def test_session_accepts_config():
    g = gen.random_bounded_treedepth(12, 3, seed=4)
    cfg = RunConfig(seed=5, engine="vectorized", inbox_order="reversed")
    session = Session(g, 3, config=cfg)
    assert session.engine == "vectorized"
    assert session.seed == 5
    result = session.decide(formulas.triangle_free())
    assert isinstance(result, Result)
    assert result.replay_args["engine"] == "vectorized"


def test_session_config_kwargs_clash():
    g = gen.path(4)
    with pytest.raises(ReproError, match="not both"):
        Session(g, 2, engine="naive", config=RunConfig())


def test_session_replay_round_trip():
    g = gen.random_bounded_treedepth(12, 3, seed=4)
    first = Session(
        g, 3, seed=11, engine="vectorized", inbox_order="shuffle",
    ).decide(formulas.triangle_free())
    replay = json.loads(json.dumps(dict(first.replay_args)))
    second = Session.from_replay(g, 3, replay).decide(
        formulas.triangle_free()
    )
    assert second.replay_args["engine"] == "vectorized"
    assert (first.verdict, first.rounds, first.messages,
            first.max_payload_bits) == \
           (second.verdict, second.rounds, second.messages,
            second.max_payload_bits)


def test_pipelines_accept_config():
    g = gen.random_bounded_treedepth(12, 3, seed=4)
    automaton = compile_formula(formulas.triangle_free())
    cfg = RunConfig(seed=2, engine="vectorized")
    via_config = decide_pipeline(automaton, g, 3, config=cfg)
    via_kwargs = decide_pipeline(
        automaton, g, 3, seed=2, engine="vectorized"
    )
    assert via_config.accepted == via_kwargs.accepted  # pipeline result field
    assert via_config.total_rounds == via_kwargs.total_rounds
    with pytest.raises(ReproError, match="not both"):
        decide_pipeline(automaton, g, 3, seed=2, config=cfg)


def test_pipeline_default_engine_is_naive():
    # Pipelines keep their historical default; Session defaults batched.
    g = gen.random_bounded_treedepth(10, 3, seed=1)
    formula, variables = formulas.triangle_assignment()
    automaton = compile_formula(formula, variables)
    default_run = count_pipeline(automaton, g, 3, seed=1)
    naive_run = count_pipeline(automaton, g, 3, seed=1, engine="naive")
    assert default_run == naive_run
    assert Session(g, 3).engine == "batched"


def test_unknown_engine_everywhere():
    g = gen.path(4)
    with pytest.raises(UnknownEngineError):
        Session(g, 2, engine="warp")
    automaton = compile_formula(formulas.triangle_free())
    with pytest.raises(UnknownEngineError):
        decide_pipeline(automaton, g, 2, engine="warp")
