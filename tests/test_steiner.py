"""Steiner tree via MSO (one of the paper's Section 1.1 applications)."""

from itertools import combinations

import pytest

from repro.algebra import compile_formula, optimize
from repro.distributed import optimize_pipeline
from repro.graph import Graph
from repro.graph import generators as gen
from repro.mso import edge_set, evaluate, formulas
from repro.treedepth import optimal_elimination_forest


def brute_force_steiner(graph, terminals):
    """Minimum total weight of an edge set connecting all terminals."""
    edges = graph.edges()
    best = None
    for r in range(len(edges) + 1):
        for subset in combinations(edges, r):
            sub = Graph(graph.vertices(), subset)
            components = sub.connected_components()
            holder = [c for c in components if any(t in c for t in terminals)]
            if len(holder) == 1 or not terminals:
                weight = sum(graph.edge_weight(u, v) for u, v in subset)
                if best is None or weight < best:
                    best = weight
        if best is not None:
            # Adding more edges cannot reduce the weight below an already
            # feasible smaller set when all weights are positive.
            break
    return best


def label_terminals(graph, terminals):
    for t in terminals:
        graph.add_vertex_label(t, "terminal")


def test_steiner_predicate_semantics():
    g = gen.path(4)
    label_terminals(g, [0, 3])
    s = edge_set("St")
    formula = formulas.steiner_connector(s)
    assert evaluate(g, formula, {s: frozenset(g.edges())})
    assert not evaluate(g, formula, {s: frozenset({(0, 1)})})
    assert evaluate(g, formula, {s: frozenset({(0, 1), (1, 2), (2, 3)})})


def test_steiner_no_terminals_trivially_satisfied():
    g = gen.path(3)
    s = edge_set("St")
    formula = formulas.steiner_connector(s)
    assert evaluate(g, formula, {s: frozenset()})


def test_min_steiner_tree_matches_bruteforce():
    g = gen.star(4)
    for leaf in (1, 2, 3, 4):
        g.set_edge_weight(0, leaf, leaf)
    label_terminals(g, [1, 3])
    s = edge_set("St")
    formula = formulas.steiner_connector(s)
    result = optimize(
        formula, g, optimal_elimination_forest(g), s, maximize=False
    )
    assert result is not None
    assert result.value == brute_force_steiner(g, [1, 3]) == 4


def test_min_steiner_tree_cycle():
    g = gen.cycle(5)
    label_terminals(g, [0, 2])
    s = edge_set("St")
    formula = formulas.steiner_connector(s)
    result = optimize(
        formula, g, optimal_elimination_forest(g), s, maximize=False
    )
    assert result is not None
    assert result.value == 2  # the short arc 0-1-2


def test_distributed_steiner():
    g = gen.cycle(5)
    label_terminals(g, [0, 2])
    s = edge_set("St")
    automaton = compile_formula(formulas.steiner_connector(s), (s,))
    outcome = optimize_pipeline(automaton, g, d=3, maximize=False)
    assert outcome.feasible
    assert outcome.value == 2
    # The witness connects the terminals.
    sub = Graph(g.vertices(), outcome.witness)
    comp = [c for c in sub.connected_components() if 0 in c]
    assert 2 in comp[0]
