"""TabulatedAutomaton: the vectorized kernel behind ``engine="vectorized"``.

The wrapper must be a drop-in TreeAutomaton — same states, same class
ids, same accepts — while exposing the integer-id fast path used by the
vectorized engine.  These tests pin the equivalence, the dict fallback
when numpy is unavailable, pickling through the automaton cache, and
the digest memoization of identical subtree joins.
"""

import pickle

import pytest

from repro.algebra import (
    TabulatedAutomaton,
    check,
    compile_formula,
    count,
    run_states,
    tabulated,
)
from repro.algebra import tables as tables_mod
from repro.graph import generators as gen
from repro.mso import formulas, vertex_set
from repro.treedepth import best_heuristic_forest


@pytest.fixture
def graph():
    return gen.random_bounded_treedepth(14, 3, seed=6)


@pytest.fixture
def forest(graph):
    return best_heuristic_forest(graph)


def _fresh_pair():
    """A plain automaton and an independently compiled tabulated twin."""
    plain = compile_formula(formulas.triangle_free())
    tab = tabulated(compile_formula(formulas.triangle_free()))
    return plain, tab


def test_tabulated_idempotent():
    plain = compile_formula(formulas.triangle_free())
    tab = tabulated(plain)
    assert isinstance(tab, TabulatedAutomaton)
    assert tabulated(tab) is tab
    assert tabulated(plain) is tab  # memoized on the inner automaton


def test_id_round_trip(graph, forest):
    plain, tab = _fresh_pair()
    state = run_states(tab, graph, forest)
    sid = tab.id_of(state)
    assert tab.state_of(sid) == state
    assert tab.id_of(tab.state_of(sid)) == sid
    assert tab.accepts_id(sid) == tab.accepts(state)


def test_run_states_matches_state_level(graph, forest):
    plain, tab = _fresh_pair()
    assert run_states(tab, graph, forest) == run_states(plain, graph, forest)


def test_check_matches_state_level(graph, forest):
    phi = formulas.triangle_free()
    plain = compile_formula(phi)
    tab = tabulated(compile_formula(phi))
    assert check(phi, graph, forest, automaton=tab) == \
        check(phi, graph, forest, automaton=plain)


def test_count_matches_state_level(graph, forest):
    formula, variables = formulas.triangle_assignment()
    expected = count(formula, graph, forest, variables)
    got = count(formula, graph, forest, variables)
    assert got == expected
    # And through an explicitly tabulated singleton automaton.
    from repro.algebra.compiler import compile_with_singletons

    automaton = tabulated(compile_with_singletons(formula, variables))
    assert count(formula, graph, forest, variables,
                 automaton=automaton) == expected


def test_glue_and_forget_tables(graph, forest):
    _, tab = _fresh_pair()
    run_states(tab, graph, forest)  # populate the tables
    assert tab.table_entries() > 0
    # Re-running hits the tables, never changes the answers.
    before = tab.table_entries()
    first = run_states(tab, graph, forest)
    assert run_states(tab, graph, forest) == first
    assert tab.table_entries() == before


def test_dict_fallback_matches_numpy(graph, forest):
    """Simulating a numpy-less install must not change anything."""
    plain, tab = _fresh_pair()
    fallback = tabulated(compile_formula(formulas.triangle_free()))
    assert fallback is not tab
    fallback._np = None  # what ``import numpy`` failing looks like
    assert run_states(fallback, graph, forest) == \
        run_states(tab, graph, forest)
    assert fallback.table_entries() == tab.table_entries()


def test_module_level_numpy_absence(monkeypatch, graph, forest):
    """A fresh wrapper built while numpy is unimportable still works."""
    monkeypatch.setattr(tables_mod, "_np", None)
    tab = tabulated(compile_formula(formulas.triangle_free()))
    assert tab._np is None
    plain = compile_formula(formulas.triangle_free())
    assert run_states(tab, graph, forest) == run_states(plain, graph, forest)


def test_vectorized_pipeline_without_numpy(monkeypatch):
    """The CONGEST vectorized engine survives a numpy-less install."""
    monkeypatch.setattr(tables_mod, "_np", None)
    from repro.api import Session

    g = gen.random_bounded_treedepth(12, 3, seed=3)
    fast = Session(g, 3, seed=1, engine="vectorized").decide(
        formulas.triangle_free()
    )
    slow = Session(g, 3, seed=1, engine="batched").decide(
        formulas.triangle_free()
    )
    assert (fast.verdict, fast.rounds, fast.messages,
            fast.max_payload_bits, fast.num_classes) == \
           (slow.verdict, slow.rounds, slow.messages,
            slow.max_payload_bits, slow.num_classes)


def test_pickle_round_trip(graph, forest):
    _, tab = _fresh_pair()
    expected = run_states(tab, graph, forest)
    clone = pickle.loads(pickle.dumps(tab))
    assert isinstance(clone, TabulatedAutomaton)
    # The clone keeps the learned tables and the id assignment.
    assert clone.table_entries() == tab.table_entries()
    assert run_states(clone, graph, forest) == expected


def test_pickle_upgrades_dict_backend(graph, forest):
    """A kernel persisted without numpy loads as arrays when numpy is back."""
    if tables_mod._np is None:
        pytest.skip("needs numpy to upgrade into")
    _, tab = _fresh_pair()
    tab._np = None  # build dict-backed tables, as a numpy-less process would
    expected = run_states(tab, graph, forest)
    clone = pickle.loads(pickle.dumps(tab))
    assert clone._np is tables_mod._np
    assert all(not isinstance(t, dict) for t in clone._glue_tables.values())
    assert clone.table_entries() == tab.table_entries()
    assert run_states(clone, graph, forest) == expected


def test_digest_memoizes_identical_subtrees():
    _, tab = _fresh_pair()
    pairs = ((0, 2), (1, 3))
    assert tab.table_digest(pairs) == tab.table_digest(tuple(pairs))
    assert tab.table_digest(pairs) != tab.table_digest(((0, 2),))


def test_num_classes_shared_with_inner(graph, forest):
    plain = compile_formula(formulas.triangle_free())
    tab = tabulated(plain)
    run_states(tab, graph, forest)
    # intern/num_classes delegate to the wrapped automaton.
    assert tab.num_classes() == plain.num_classes()


def test_optimize_unaffected(graph, forest):
    """Sequential optimize stays state-level even for tabulated input."""
    from repro.algebra import optimize

    s = vertex_set("S")
    phi = formulas.independent_set(s)
    plain = compile_formula(phi, (s,))
    result = optimize(phi, graph, forest, s, maximize=True, automaton=plain)
    assert result.value is not None
