"""Tests for the testkit case model and generators.

The generators' contract is determinism and replayability: the same seed
names the same case stream on every machine, every case serializes to
JSON and back without loss, and every generated formula round-trips
through the parser grammar.
"""

import json

import pytest

from repro.errors import ReproError
from repro.graph import generators as gen
from repro.mso import Sort, formulas, parse
from repro.mso import syntax as sx
from repro.testkit import (
    Case,
    CaseGenerator,
    formula_from_source,
    formula_to_source,
)
from repro.treedepth import best_heuristic_forest


# ----------------------------------------------------------------------
# Formula codec
# ----------------------------------------------------------------------

def test_catalog_formulas_round_trip_through_source():
    catalog = [
        formulas.triangle_free(),
        formulas.acyclic(),
        formulas.connected(),
        formulas.k_colorable(2),
        formulas.h_free(gen.claw()),
        formulas.has_even_subgraph(),
        formulas.exists_vertex_of_degree_greater_fo(2),
    ]
    for phi in catalog:
        text = formula_to_source(phi)
        parsed, scope = formula_from_source(text)
        assert parsed == phi
        assert scope == ()


def test_free_variable_formulas_round_trip_with_scope():
    s = sx.Var("S", Sort.VERTEX_SET)
    phi = formulas.independent_set(s)
    text = formula_to_source(phi)
    parsed, scope = formula_from_source(text, {"S": "VS"})
    assert parsed == phi
    assert scope == (s,)


def test_generated_formulas_round_trip(seed=17):
    generator = CaseGenerator(seed)
    for _ in range(40):
        case = generator.case()
        text = formula_to_source(case.formula)
        free = {v.name: {Sort.VERTEX: "V", Sort.EDGE: "E",
                         Sort.VERTEX_SET: "VS", Sort.EDGE_SET: "ES"}[v.sort]
                for v in case.scope}
        parsed, _scope = formula_from_source(text, free)
        assert parsed == case.formula, text


def test_unsupported_atom_is_a_loud_error():
    # GraphDegrees has no parser spelling; the printer must refuse it,
    # not emit text that fails later on a replaying machine.
    phi = sx.GraphDegrees(frozenset({1}), 2)
    with pytest.raises(ReproError, match="formula_to_source"):
        formula_to_source(phi)


# ----------------------------------------------------------------------
# Case serialization
# ----------------------------------------------------------------------

def test_case_round_trips_through_dict(seed=23):
    generator = CaseGenerator(seed)
    for _ in range(25):
        case = generator.case()
        data = json.loads(json.dumps(case.to_dict()))
        back = Case.from_dict(data)
        assert back == case
        assert back.case_id == case.case_id


def test_case_id_is_content_addressed():
    g = gen.path(3)
    case = Case(graph=g, d=2, formula=formulas.acyclic(), workload="decide")
    same = Case(graph=gen.path(3), d=2, formula=formulas.acyclic(),
                workload="decide", note="different note")
    other = Case(graph=gen.path(4), d=2, formula=formulas.acyclic(),
                 workload="decide")
    assert case.case_id == same.case_id  # note is provenance, not identity
    assert case.case_id != other.case_id


def test_case_rejects_unknown_workload():
    with pytest.raises(ReproError, match="workload"):
        Case(graph=gen.path(2), d=1, formula=formulas.acyclic(),
             workload="solve")
    with pytest.raises(ReproError, match="sense"):
        Case(graph=gen.path(2), d=1, formula=formulas.acyclic(),
             workload="optimize", sense="best")


# ----------------------------------------------------------------------
# Generator stream
# ----------------------------------------------------------------------

def test_same_seed_names_the_same_suite():
    first = [c.case_id for c in CaseGenerator(8).cases(30)]
    second = [c.case_id for c in CaseGenerator(8).cases(30)]
    assert first == second
    assert first != [c.case_id for c in CaseGenerator(9).cases(30)]


def test_generated_cases_respect_bounds_and_promises():
    for case in CaseGenerator(4, max_vertices=10).cases(40):
        assert 1 <= case.graph.num_vertices() <= 10
        assert case.graph.is_connected()
        # The promise is honest: the heuristic forest actually fits it.
        assert best_heuristic_forest(case.graph).depth() <= case.d
        if case.workload == "optimize":
            assert len(case.scope) == 1 and case.scope[0].sort.is_set
        if case.plan is not None:
            assert case.workload == "decide"
            assert case.retry_attempts >= 1


def test_generator_covers_every_workload():
    seen = {case.workload for case in CaseGenerator(1).cases(80)}
    assert seen == {"decide", "optimize", "count", "certify"}


def test_deep_formulas_only_ride_shallow_forests():
    # Evaluation cost is a powerset tower per quantifier, compounded per
    # forest level: rank-4 formulas on depth-3 forests take minutes.  The
    # generator must never emit that pairing.
    from repro.testkit.generators import _quantifier_rank

    degree_3 = formulas.exists_vertex_of_degree_greater_fo(2)
    assert _quantifier_rank(degree_3) == 4
    assert _quantifier_rank(formulas.triangle_free()) == 3
    for case in CaseGenerator(8, max_vertices=12).cases(200):
        if _quantifier_rank(case.formula) > 3:
            assert case.d <= 2, case.note
