"""The harness's sensitivity gate: the planted mutant MUST be caught.

:mod:`repro.testkit.mutants` carries a value-only copy of the optimize
dynamic program with a silent ``w1 + w2 + 1`` off-by-one in the glue
update.  These tests pin the full kill chain — detect, shrink, replay —
so a refactor that blinds the oracle (or the shrinker, or the corpus
codec) fails loudly here instead of silently degrading the fuzzer.
"""

import glob
import json
import os

import pytest

from repro.algebra.cache import AutomatonCache
from repro.testkit import (
    CaseGenerator,
    differential_check,
    load_case,
    shrink_case,
)
from repro.testkit.mutants import mutant_reference

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


@pytest.fixture(scope="module")
def cache():
    return AutomatonCache(persist=False)


def _first_mutant_hit(cache, seed=8, budget=60):
    generator = CaseGenerator(seed, max_vertices=10)
    for _ in range(budget):
        case = generator.case()
        if case.workload != "optimize":
            continue
        found = differential_check(case, reference=mutant_reference,
                                   cache=cache)
        if found:
            return case, found
    return None, []


def test_mutant_is_caught_and_shrinks_small(cache):
    case, found = _first_mutant_hit(cache)
    assert case is not None, "the planted off-by-one was never detected"
    assert any(d.kind == "verdict" for d in found)

    def failing(candidate):
        return bool(differential_check(candidate, reference=mutant_reference,
                                       cache=cache))

    small, _checks = shrink_case(case, failing)
    assert small.graph.num_vertices() <= 8
    assert failing(small)  # still a counterexample after shrinking
    # ... and clean under the honest oracle: the bug is in the mutant,
    # not the pipeline.
    assert differential_check(small, cache=cache) == []


def _witness_files():
    out = []
    for path in sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json"))):
        with open(path, encoding="utf-8") as handle:
            if json.load(handle).get("meta", {}).get("mutation_witness"):
                out.append(path)
    return out


def test_committed_witness_still_kills_the_mutant(cache):
    witnesses = _witness_files()
    assert witnesses, "no mutation witness committed under tests/corpus"
    for path in witnesses:
        case, meta = load_case(path)
        assert case.graph.num_vertices() <= 8
        assert differential_check(case, reference=mutant_reference,
                                  cache=cache), path
        assert differential_check(case, cache=cache) == []


def test_committed_corpus_is_conformant(cache):
    # Every replay file (golden cases and witnesses alike) must pass the
    # honest oracle — the corpus pins regressions, it never carries one.
    paths = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))
    assert len(paths) >= 5
    for path in paths:
        case, _meta = load_case(path)
        found = differential_check(case, cache=cache)
        assert found == [], (path, [d.format() for d in found])
