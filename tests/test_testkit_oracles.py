"""Tests for the differential oracle and the metamorphic relations.

Two directions matter equally: on the honest pipeline the oracle must
stay silent (Theorem 6.1 in executable form), and with a deliberately
broken reference it must light up — an oracle that cannot fire proves
nothing.
"""

import dataclasses

import pytest

from repro.algebra.cache import AutomatonCache
from repro.graph import generators as gen
from repro.mso import Sort, formulas
from repro.mso import syntax as sx
from repro.testkit import (
    Case,
    CaseGenerator,
    check_metamorphic,
    differential_check,
    mutant_reference,
    replay_roundtrip_check,
    sequential_reference,
)
from repro.testkit.mutants import mutant_optimize_value
from repro.testkit.oracles import Reference


@pytest.fixture(scope="module")
def cache():
    return AutomatonCache(persist=False)


def _case(**overrides):
    defaults = dict(graph=gen.path(4), d=3, formula=formulas.acyclic(),
                    workload="decide")
    defaults.update(overrides)
    return Case(**defaults)


# ----------------------------------------------------------------------
# The honest pipeline is conformant
# ----------------------------------------------------------------------

def test_generated_cases_are_conformant(cache):
    for case in CaseGenerator(8, max_vertices=9).cases(12):
        found = differential_check(case, cache=cache)
        assert found == [], [d.format() for d in found]


def test_metamorphic_relations_hold(cache):
    for case in CaseGenerator(12, max_vertices=8).cases(8):
        if case.workload == "certify":
            continue
        found = check_metamorphic(case, cache=cache)
        assert found == [], [d.format() for d in found]


def test_replay_roundtrip_is_byte_identical(cache):
    case = _case(seed=5)
    assert replay_roundtrip_check(case, cache) == []


def test_replay_roundtrip_with_fault_plan(cache):
    from repro.faults import FaultPlan

    case = _case(seed=5, plan=FaultPlan(seed=3, drop_rate=0.05),
                 retry_attempts=3)
    assert replay_roundtrip_check(case, cache) == []


# ----------------------------------------------------------------------
# References
# ----------------------------------------------------------------------

def test_sequential_reference_per_workload(cache):
    assert sequential_reference(_case(), cache).verdict is True
    triangle = _case(graph=gen.clique(3), formula=formulas.triangle_free())
    assert sequential_reference(triangle, cache).verdict is False

    s = sx.Var("S", Sort.VERTEX_SET)
    opt = _case(formula=formulas.independent_set(s), workload="optimize",
                scope=(s,))
    ref = sequential_reference(opt, cache)
    assert ref.verdict is True and ref.value == 2  # alternating path vertices

    x = sx.Var("x", Sort.VERTEX)
    cnt = _case(formula=sx.HasLabel(x, "red"), workload="count", scope=(x,))
    assert sequential_reference(cnt, cache).count == 0  # unlabeled path


def test_wrong_reference_fires_the_oracle(cache):
    case = _case()
    wrong = lambda c, _cache: Reference(verdict=False)
    found = differential_check(case, reference=wrong, cache=cache)
    kinds = {d.kind for d in found}
    # Brute force disagrees with the planted reference, and so does every
    # engine x order cell.
    assert "algebra-vs-bruteforce" in kinds
    assert "verdict" in kinds
    assert all(d.case_id == case.case_id for d in found)


# ----------------------------------------------------------------------
# The planted mutant is detected
# ----------------------------------------------------------------------

def test_mutant_inflates_optimize_values(cache):
    s = sx.Var("S", Sort.VERTEX_SET)
    case = _case(formula=formulas.independent_set(s), workload="optimize",
                 scope=(s,))
    honest = sequential_reference(case, cache)
    mutated = mutant_optimize_value(case, cache)
    assert mutated != honest.value  # the off-by-one is visible


def test_mutant_reference_delegates_for_closed_workloads(cache):
    case = _case()
    assert mutant_reference(case, cache) == sequential_reference(case, cache)


def test_differential_check_catches_the_mutant(cache):
    s = sx.Var("S", Sort.VERTEX_SET)
    case = _case(formula=formulas.independent_set(s), workload="optimize",
                 scope=(s,))
    found = differential_check(case, reference=mutant_reference, cache=cache)
    assert any(d.kind == "verdict" for d in found)


# ----------------------------------------------------------------------
# Discrepancy ergonomics
# ----------------------------------------------------------------------

def test_discrepancy_format_and_note_equality():
    from repro.testkit import Discrepancy

    d = Discrepancy("ab" * 32, "verdict", "True != False",
                    cell="engine=naive", note="x")
    assert "verdict [engine=naive]" in d.format()
    assert d == dataclasses.replace(d, note="y")  # note is not identity
