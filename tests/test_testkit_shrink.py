"""Tests for the greedy case minimizer."""

from repro.graph import generators as gen
from repro.mso import Sort, formulas
from repro.mso import syntax as sx
from repro.testkit import Case, shrink_case
from repro.testkit.shrink import formula_candidates, graph_candidates


def _case(**overrides):
    defaults = dict(graph=gen.path(6), d=3, formula=formulas.acyclic(),
                    workload="decide")
    defaults.update(overrides)
    return Case(**defaults)


def test_graph_candidates_stay_connected_and_honest():
    case = _case(graph=gen.grid(2, 3))
    for candidate in graph_candidates(case):
        assert candidate.graph.is_connected()
        assert candidate.graph.num_vertices() >= 1
        # The promise is recomputed, never inherited stale.
        from repro.treedepth import best_heuristic_forest

        assert best_heuristic_forest(candidate.graph).depth() <= candidate.d


def test_formula_candidates_are_valid_and_serializable():
    from repro.testkit import formula_to_source

    x = sx.Var("x", Sort.VERTEX)
    y = sx.Var("y", Sort.VERTEX)
    phi = sx.Exists(x, sx.Exists(y, sx.And((
        sx.Adj(x, y), sx.Not(sx.Eq(x, y)), sx.Truth(True),
    ))))
    case = _case(formula=phi)
    candidates = list(formula_candidates(case))
    assert candidates
    for candidate in candidates:
        sx.validate(candidate.formula, allowed_free=case.scope)
        formula_to_source(candidate.formula)  # must not raise
    # Dropping one conjunct from a 3-way And keeps a 2-way And; dropping
    # from a 2-way And unwraps to the bare part (single-part And would
    # not round-trip through the parser).
    shapes = {type(c.formula).__name__ for c in candidates}
    assert "Truth" in shapes  # whole-tree constant replacement


def test_shrink_minimizes_a_size_predicate():
    # A "failure" that depends only on having >= 3 vertices must shrink
    # to exactly 3 vertices and the trivial formula.
    case = _case(graph=gen.random_tree(9, seed=2))
    small, checks = shrink_case(
        case, lambda c: c.graph.num_vertices() >= 3
    )
    assert small.graph.num_vertices() == 3
    assert checks > 0
    assert small.formula == sx.Truth(True)  # most aggressive simplification


def test_shrink_respects_the_budget():
    case = _case(graph=gen.random_tree(12, seed=4))
    _small, checks = shrink_case(
        case, lambda c: c.graph.num_vertices() >= 2, max_checks=7
    )
    assert checks <= 7


def test_shrink_keeps_the_failure_failing():
    # Predicate: the graph still contains a triangle.
    def has_triangle(c):
        return any(
            c.graph.has_edge(u, w)
            for u in c.graph.vertices()
            for v in c.graph.neighbors(u)
            for w in c.graph.neighbors(v)
            if u != w
        )

    case = _case(graph=gen.clique(5))
    small, _checks = shrink_case(case, has_triangle)
    assert has_triangle(small)
    assert small.graph.num_vertices() == 3  # a bare triangle


def test_shrunk_case_round_trips():
    case = _case(graph=gen.star(5))
    small, _ = shrink_case(case, lambda c: c.graph.num_vertices() >= 2)
    back = Case.from_dict(small.to_dict())
    assert back == small
