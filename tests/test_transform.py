"""Formula simplification and NNF."""

from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.graph import generators as gen
from repro.mso import Adj, And, Exists, Forall, Not, Or, Truth, evaluate, vertex, vertex_set
from repro.mso.transform import formula_size, simplify, to_nnf

x, y = vertex("x"), vertex("y")
X = vertex_set("X")
atom = Adj(x, y)


def test_double_negation():
    assert simplify(Not(Not(atom))) == atom
    assert simplify(Not(Not(Not(atom)))) == Not(atom)


def test_constant_folding():
    assert simplify(Not(Truth(True))) == Truth(False)
    assert simplify(And((Truth(True), atom))) == atom
    assert simplify(And((Truth(False), atom))) == Truth(False)
    assert simplify(Or((Truth(False), atom))) == atom
    assert simplify(Or((Truth(True), atom))) == Truth(True)


def test_flatten_and_dedupe():
    f = And((atom, And((atom, Adj(y, x)))))
    simplified = simplify(f)
    assert isinstance(simplified, And)
    assert len(simplified.parts) == 2


def test_set_quantifier_constant_folding():
    assert simplify(Exists(X, Truth(True))) == Truth(True)
    assert simplify(Forall(X, Truth(False))) == Truth(False)
    # Element quantifiers must NOT fold (their domain can be empty).
    e = Exists(x, Truth(True))
    assert simplify(e) == e


def test_element_quantifier_fold_would_be_unsound():
    g = Graph()  # no vertices
    assert not evaluate(g, Exists(x, Truth(True)))
    assert evaluate(g, Forall(x, Truth(False)))


def test_nnf_pushes_negations():
    f = Not(Exists(x, And((atom, Not(Adj(y, x))))))
    nnf = to_nnf(f)
    assert isinstance(nnf, Forall)
    assert isinstance(nnf.body, Or)
    # Negations only on atoms.
    def check(node):
        if isinstance(node, Not):
            assert not isinstance(node.inner, (Not, And, Or, Exists, Forall))
        for child in getattr(node, "parts", ()):
            check(child)
        if hasattr(node, "body"):
            check(node.body)
        if hasattr(node, "inner"):
            check(node.inner)
    check(nnf)


def test_formula_size():
    assert formula_size(atom) == 1
    assert formula_size(Not(atom)) == 2
    assert formula_size(Exists(x, And((atom, atom)))) == 4


@st.composite
def boolean_trees(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(st.sampled_from([Truth(True), Truth(False), atom, Adj(y, x)]))
    kind = draw(st.sampled_from(["not", "and", "or"]))
    if kind == "not":
        return Not(draw(boolean_trees(depth=depth + 1)))
    a = draw(boolean_trees(depth=depth + 1))
    b = draw(boolean_trees(depth=depth + 1))
    return (And if kind == "and" else Or)((a, b))


@given(boolean_trees())
@settings(max_examples=80)
def test_simplify_and_nnf_preserve_semantics(body):
    formula = Exists(x, Exists(y, body))
    for g in [gen.path(3), gen.clique(3)]:
        expected = evaluate(g, formula)
        assert evaluate(g, Exists(x, Exists(y, simplify(body)))) == expected
        assert evaluate(g, to_nnf(formula)) == expected
