"""Tests for elimination forests, exact treedepth, heuristics, and the
canonical tree decomposition (paper Section 2)."""

import pytest

from repro.errors import DecompositionError
from repro.graph import Graph
from repro.graph import generators as gen
from repro.treedepth import (
    EliminationForest,
    TreeDecomposition,
    canonical_tree_decomposition,
    centroid_elimination_forest,
    degeneracy,
    dfs_elimination_forest,
    forest_from_order,
    greedy_elimination_forest,
    optimal_elimination_forest,
    treedepth,
    treedepth_at_most,
    treedepth_lower_bound,
)


# ----------------------------------------------------------------------
# EliminationForest structure
# ----------------------------------------------------------------------

def chain_forest(n):
    return EliminationForest({i: (i - 1 if i else None) for i in range(n)})


def test_forest_basics():
    f = EliminationForest({0: None, 1: 0, 2: 0, 3: 1})
    assert f.roots() == [0]
    assert f.is_tree()
    assert f.children(0) == [1, 2]
    assert f.parent(3) == 1
    assert f.depth_of(0) == 1
    assert f.depth_of(3) == 3
    assert f.depth() == 3
    assert f.root_path(3) == [0, 1, 3]
    assert f.ancestors(3) == [0, 1]
    assert f.subtree(1) == [1, 3]
    assert f.is_ancestor(0, 3)
    assert not f.is_ancestor(2, 3)
    assert f.is_ancestor(3, 3)


def test_forest_orders():
    f = EliminationForest({0: None, 1: 0, 2: 0, 3: 1})
    topo = f.topological_order()
    assert topo[0] == 0
    assert topo.index(1) < topo.index(3)
    assert f.bottom_up_order() == list(reversed(topo))


def test_forest_cycle_detection():
    with pytest.raises(DecompositionError):
        EliminationForest({0: 1, 1: 0})
    with pytest.raises(DecompositionError):
        EliminationForest({0: None, 1: 2})  # parent not a vertex


def test_forest_validity_for_graph():
    g = gen.path(3)
    valid = EliminationForest({1: None, 0: 1, 2: 1})
    assert valid.is_valid_for(g)
    invalid = EliminationForest({0: None, 1: 0, 2: 0})
    # Edge (1, 2) joins two siblings -> not ancestor related.
    g2 = Graph(range(3), [(0, 1), (1, 2)])
    assert not invalid.is_valid_for(g2)
    with pytest.raises(DecompositionError):
        invalid.validate_for(g2)


def test_forest_vertex_set_mismatch():
    g = gen.path(3)
    f = EliminationForest({0: None, 1: 0})
    assert not f.is_valid_for(g)


def test_is_subforest_of():
    g = gen.path(3)
    f = EliminationForest({0: None, 1: 0, 2: 1})
    assert f.is_subforest_of(g)
    f2 = EliminationForest({1: None, 0: 1, 2: 0})  # edge (0,2) not in P3
    assert not f2.is_subforest_of(g)


def test_forest_from_order_always_valid():
    g = gen.random_connected_graph(10, 6, seed=3)
    for seed in range(3):
        import random

        order = g.vertices()
        random.Random(seed).shuffle(order)
        f = forest_from_order(g, order)
        f.validate_for(g)


def test_forest_from_order_bad_order():
    with pytest.raises(DecompositionError):
        forest_from_order(gen.path(3), [0, 1])


# ----------------------------------------------------------------------
# Exact treedepth (Lemma 2.2 + known values)
# ----------------------------------------------------------------------

def test_treedepth_known_values():
    assert treedepth(Graph([0])) == 1
    assert treedepth(gen.clique(4)) == 4
    assert treedepth(gen.star(5)) == 2
    assert treedepth(gen.cycle(4)) == 3
    assert treedepth(Graph()) == 0


def test_treedepth_of_paths_is_ceil_log():
    # td(P_n) = ceil(log2(n + 1)), the paper's running example.
    import math

    for n in range(1, 12):
        expected = math.ceil(math.log2(n + 1))
        assert treedepth(gen.path(n)) == expected, n


def test_treedepth_disconnected_is_max():
    from repro.graph import disjoint_union

    g = disjoint_union(gen.clique(3), gen.path(2))
    assert treedepth(g) == 3


def test_optimal_forest_is_valid_and_tight():
    for g in [gen.path(7), gen.cycle(5), gen.clique(4), gen.caterpillar(3, 2)]:
        f = optimal_elimination_forest(g)
        f.validate_for(g)
        assert f.depth() == treedepth(g)


def test_treedepth_at_most():
    g = gen.path(7)  # td = 3
    assert treedepth_at_most(g, 2) is None
    f = treedepth_at_most(g, 3)
    assert f is not None and f.depth() <= 3


def test_degeneracy():
    assert degeneracy(gen.clique(4)) == 3
    assert degeneracy(gen.path(5)) == 1
    assert degeneracy(gen.cycle(5)) == 2
    assert degeneracy(gen.grid(3, 3)) == 2


def test_lower_bound_is_valid():
    for g in [gen.path(9), gen.cycle(6), gen.clique(4), gen.grid(2, 3)]:
        assert treedepth_lower_bound(g) <= treedepth(g)


# ----------------------------------------------------------------------
# Heuristics
# ----------------------------------------------------------------------

def test_dfs_forest_valid_and_lemma25_bound():
    for seed in range(4):
        g = gen.random_bounded_treedepth(14, 3, seed=seed)
        f = dfs_elimination_forest(g)
        f.validate_for(g)
        assert f.is_subforest_of(g)
        assert f.depth() <= 2 ** treedepth(g)  # Lemma 2.5


def test_dfs_forest_respects_root():
    g = gen.path(5)
    f = dfs_elimination_forest(g, root=2)
    assert f.parent(2) is None


def test_dfs_forest_unknown_root():
    with pytest.raises(DecompositionError):
        dfs_elimination_forest(gen.path(3), root=99)


def test_centroid_forest_on_path_is_logarithmic():
    import math

    g = gen.path(31)
    f = centroid_elimination_forest(g)
    f.validate_for(g)
    assert f.depth() == math.ceil(math.log2(32))  # = 5 = treedepth(P_31)


def test_centroid_rejects_cycles():
    with pytest.raises(DecompositionError):
        centroid_elimination_forest(gen.cycle(4))


def test_greedy_forest_valid():
    g = gen.random_connected_graph(12, 8, seed=1)
    f = greedy_elimination_forest(g)
    f.validate_for(g)


# ----------------------------------------------------------------------
# Tree decompositions (Definition 2.3, Lemma 2.4)
# ----------------------------------------------------------------------

def test_canonical_decomposition_valid_and_width():
    for g in [gen.path(7), gen.cycle(5), gen.random_bounded_treedepth(12, 3, seed=5)]:
        f = optimal_elimination_forest(g)
        td = canonical_tree_decomposition(f)
        td.validate_for(g)
        assert td.width() == f.depth() - 1  # Lemma 2.4


def test_canonical_bags_are_root_paths():
    f = EliminationForest({0: None, 1: 0, 2: 1})
    td = canonical_tree_decomposition(f)
    assert td.bag(2) == {0, 1, 2}
    assert td.bag(0) == {0}


def test_tree_decomposition_rejects_bad_bags():
    g = gen.path(3)
    # Missing edge coverage for (1, 2).
    bad = TreeDecomposition({0: None, 1: 0}, {0: [0, 1], 1: [2]})
    assert not bad.is_valid_for(g)
    # Vertex 1's bags are disconnected in the tree.
    bad2 = TreeDecomposition(
        {0: None, 1: 0, 2: 1}, {0: [0, 1], 1: [1, 2], 2: [1]}
    )
    assert bad2.is_valid_for(g)  # still connected through node 1
    bad3 = TreeDecomposition(
        {0: None, 1: 0, 2: 1}, {0: [0, 1], 1: [2], 2: [1, 2]}
    )
    assert not bad3.is_valid_for(g)


def test_tree_decomposition_mismatched_ids():
    with pytest.raises(DecompositionError):
        TreeDecomposition({0: None}, {0: [0], 1: [1]})


def test_tree_decomposition_unknown_vertex_in_bag():
    g = gen.path(2)
    bad = TreeDecomposition({0: None}, {0: [0, 1, 7]})
    assert not bad.is_valid_for(g)
